//! The Chrome-trace JSON model: an in-memory [`Trace`] of completed
//! spans, a writer that emits the Trace Event Format consumed by
//! Perfetto / `chrome://tracing`, and a parser for the exact shape the
//! writer emits (the workspace builds fully offline, so there is no
//! serde — both sides are hand-rolled, one event per line).
//!
//! This module is compiled unconditionally: reading and analysing trace
//! files never requires the `enabled` recording feature.

use std::collections::BTreeMap;

/// One completed span: a Chrome-trace `"ph": "X"` (complete) event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// The span kind, e.g. `plan.build` or `lane.marshal`.
    pub name: String,
    /// Category — the span name's prefix before the first `.`, used by
    /// trace viewers for colour grouping.
    pub cat: String,
    /// Start timestamp in microseconds since the collector was installed.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// The recording thread's small dense id (see the `threads` table on
    /// [`Trace`] for its name).
    pub tid: u64,
    /// Item count the span processed (batch size, lane group width, …),
    /// emitted as `args.items` so per-item costs can be recovered.
    pub items: Option<u64>,
}

/// A completed trace: span events plus thread and host metadata, ready to
/// serialize as Chrome-trace JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All completed spans, in completion order.
    pub events: Vec<SpanEvent>,
    /// `tid → thread name` for every thread that recorded a span.
    pub threads: Vec<(u64, String)>,
    /// Free-form provenance key/value pairs, serialized under the
    /// top-level `otherData` object (host CPU, tier, compiler, …).
    pub meta: Vec<(String, String)>,
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Extracts the string value of `"key": "…"` from a single-line JSON
/// object, starting the search at byte `from`.
fn str_field(line: &str, key: &str, from: usize) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line[from..].find(&pat)? + from + pat.len();
    let rest = &line[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'"' => return Some(unescape(&rest[..end])),
            b'\\' => end += 2,
            _ => end += 1,
        }
    }
    None
}

/// Extracts the numeric value of `"key": N` from a single-line JSON
/// object.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distinct span kinds present, sorted.
    pub fn span_kinds(&self) -> Vec<String> {
        let mut kinds: Vec<String> = self.events.iter().map(|e| e.name.clone()).collect();
        kinds.sort();
        kinds.dedup();
        kinds
    }

    /// Per-kind span durations in microseconds, sorted by kind name — the
    /// sample sets the `analyse` statistics run on.
    pub fn durations_us_by_name(&self) -> Vec<(String, Vec<f64>)> {
        let mut by_name: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for e in &self.events {
            by_name.entry(&e.name).or_default().push(e.dur_us);
        }
        by_name
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect()
    }

    /// Renders the trace as Chrome-trace JSON (the "JSON object format":
    /// a `traceEvents` array plus `otherData` provenance), one event per
    /// line so the parser and line-based tools stay simple.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            out.push_str(&format!("{sep}  \"{}\": \"{}\"", escape(k), escape(v)));
        }
        out.push_str("\n},\n\"traceEvents\": [\n");
        let mut lines = Vec::with_capacity(self.events.len() + self.threads.len() + 1);
        lines.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"robomorphic\"}}"
                .to_owned(),
        );
        for (tid, name) in &self.threads {
            lines.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ));
        }
        for e in &self.events {
            let args = match e.items {
                Some(n) => format!(",\"args\":{{\"items\":{n}}}"),
                None => String::new(),
            };
            lines.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":1,\"tid\":{}{args}}}",
                escape(&e.name),
                escape(&e.cat),
                e.ts_us,
                e.dur_us,
                e.tid,
            ));
        }
        out.push_str(&lines.join(",\n"));
        out.push_str("\n]\n}\n");
        out
    }

    /// Writes the Chrome-trace JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be written.
    pub fn write_chrome(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Parses a [`Trace::to_chrome_json`] artifact back into a trace.
    ///
    /// Validates the required Chrome-trace fields on every event: a
    /// complete (`"ph":"X"`) event must carry `name`, `ts`, `dur`, and
    /// `tid`; metadata (`"ph":"M"`) events are consumed for thread names.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line.
    pub fn parse_chrome(json: &str) -> Result<Trace, String> {
        let mut trace = Trace::new();
        let mut in_meta = false;
        let mut saw_events = false;
        for raw in json.lines() {
            let line = raw.trim().trim_end_matches(',');
            if line.is_empty() {
                continue;
            }
            if line.starts_with("\"otherData\"") {
                in_meta = !line.contains('}');
                continue;
            }
            if line.starts_with("\"traceEvents\"") {
                in_meta = false;
                saw_events = true;
                continue;
            }
            if in_meta {
                if line == "}" {
                    in_meta = false;
                    continue;
                }
                let rest = line
                    .strip_prefix('"')
                    .ok_or_else(|| format!("malformed otherData entry `{line}`"))?;
                let (key, after) = rest
                    .split_once("\":")
                    .ok_or_else(|| format!("malformed otherData entry `{line}`"))?;
                let value = after.trim().trim_matches('"');
                trace.meta.push((unescape(key), unescape(value)));
                continue;
            }
            if line == "{" || line == "}" || !line.starts_with('{') {
                continue; // structural lines: outer braces, closing bracket
            }
            let ph = str_field(line, "ph", 0)
                .ok_or_else(|| format!("event without a `ph` phase: `{line}`"))?;
            match ph.as_str() {
                "M" => {
                    if str_field(line, "name", 0).as_deref() == Some("thread_name") {
                        let tid = num_field(line, "tid")
                            .ok_or_else(|| format!("thread_name without tid: `{line}`"))?
                            as u64;
                        let args_at = line.find("\"args\"").unwrap_or(0);
                        let name = str_field(line, "name", args_at)
                            .ok_or_else(|| format!("thread_name without args.name: `{line}`"))?;
                        trace.threads.push((tid, name));
                    }
                }
                "X" => {
                    let name = str_field(line, "name", 0)
                        .ok_or_else(|| format!("span without a name: `{line}`"))?;
                    let ts_us =
                        num_field(line, "ts").ok_or_else(|| format!("span `{name}` without ts"))?;
                    let dur_us = num_field(line, "dur")
                        .ok_or_else(|| format!("span `{name}` without dur"))?;
                    let tid = num_field(line, "tid")
                        .ok_or_else(|| format!("span `{name}` without tid"))?
                        as u64;
                    let cat = str_field(line, "cat", 0).unwrap_or_default();
                    let items = line
                        .find("\"args\"")
                        .and_then(|at| num_field(&line[at..], "items"))
                        .map(|n| n as u64);
                    trace.events.push(SpanEvent {
                        name,
                        cat,
                        ts_us,
                        dur_us,
                        tid,
                        items,
                    });
                }
                other => return Err(format!("unsupported event phase `{other}`")),
            }
        }
        if !saw_events {
            return Err("not a Chrome-trace file: no `traceEvents` array".to_owned());
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            events: vec![
                SpanEvent {
                    name: "plan.build".into(),
                    cat: "plan".into(),
                    ts_us: 1.5,
                    dur_us: 250.125,
                    tid: 1,
                    items: None,
                },
                SpanEvent {
                    name: "tape.eval".into(),
                    cat: "tape".into(),
                    ts_us: 300.0,
                    dur_us: 42.0,
                    tid: 2,
                    items: Some(64),
                },
                SpanEvent {
                    name: "tape.eval".into(),
                    cat: "tape".into(),
                    ts_us: 350.0,
                    dur_us: 40.0,
                    tid: 2,
                    items: Some(64),
                },
            ],
            threads: vec![(1, "main".into()), (2, "worker-1".into())],
            meta: vec![("tier".into(), "avx2".into())],
        }
    }

    #[test]
    fn round_trips_through_chrome_json() {
        let t = sample();
        let parsed = Trace::parse_chrome(&t.to_chrome_json()).expect("parses own output");
        assert_eq!(parsed, t);
    }

    #[test]
    fn span_kinds_dedupe_and_sort() {
        assert_eq!(sample().span_kinds(), vec!["plan.build", "tape.eval"]);
    }

    #[test]
    fn durations_group_by_name() {
        let groups = sample().durations_us_by_name();
        assert_eq!(groups[0].0, "plan.build");
        assert_eq!(groups[1].1, vec![42.0, 40.0]);
    }

    #[test]
    fn escapes_names_and_meta() {
        let mut t = Trace::new();
        t.meta.push(("cpu".into(), "odd \"quoted\\\" model".into()));
        t.events.push(SpanEvent {
            name: "weird\"span".into(),
            cat: "weird\"span".into(),
            ts_us: 0.0,
            dur_us: 1.0,
            tid: 0,
            items: None,
        });
        let parsed = Trace::parse_chrome(&t.to_chrome_json()).expect("escaped round trip");
        assert_eq!(parsed.events[0].name, "weird\"span");
        assert_eq!(parsed.meta[0].1, "odd \"quoted\\\" model");
    }

    #[test]
    fn parse_rejects_non_traces() {
        assert!(Trace::parse_chrome("{}").is_err());
        assert!(Trace::parse_chrome("\"traceEvents\": [\n{\"nope\":1}\n]").is_err());
    }

    #[test]
    fn zero_duration_spans_survive() {
        let mut t = Trace::new();
        t.events.push(SpanEvent {
            name: "tape.fuse".into(),
            cat: "tape".into(),
            ts_us: 10.0,
            dur_us: 0.0,
            tid: 1,
            items: None,
        });
        let parsed = Trace::parse_chrome(&t.to_chrome_json()).unwrap();
        assert_eq!(parsed.events[0].dur_us, 0.0);
    }
}
