//! Host provenance shared by trace files and bench reports.

/// Host provenance for a trace or benchmark report: what machine and
/// compiler the numbers came from. Absolute timings are machine-specific,
/// so the CI regression guard compares machine-relative speedup ratios —
/// but the host block makes any cross-machine comparison explicit in the
/// artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// CPU model string (from `/proc/cpuinfo` on Linux, else `unknown`).
    pub cpu_model: String,
    /// Comma-separated SIMD feature/tier summary (e.g. `sse2,avx2`).
    pub features: String,
    /// Available hardware parallelism (logical cores).
    pub cores: usize,
    /// `rustc --version` of the compiler that built the artifact.
    pub rustc: String,
    /// The [`ExecTier`](robo_spatial::ExecTier) the host serves at.
    pub tier: String,
}

impl HostInfo {
    /// Probes the current host.
    pub fn detect() -> Self {
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|text| {
                text.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|m| m.trim().to_owned())
            })
            .unwrap_or_else(|| "unknown".to_owned());
        let mut features = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            features.push("sse2");
            if std::arch::is_x86_feature_detected!("avx2") {
                features.push("avx2");
            }
            if std::arch::is_x86_feature_detected!("fma") {
                // Present on the host, but never used by the kernels —
                // two-rounding semantics are part of the bit-identity
                // contract.
                features.push("fma(unused)");
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            features.push("neon");
        }
        Self {
            cpu_model,
            features: features.join(","),
            cores: std::thread::available_parallelism().map_or(1, usize::from),
            rustc: env!("ROBO_TRACE_RUSTC").to_owned(),
            tier: robo_spatial::ExecTier::detect().to_string(),
        }
    }

    /// The provenance as `otherData` key/value pairs for a
    /// [`Trace`](crate::Trace), including the f64 SIMD lane width the
    /// host's tier serves at.
    pub fn trace_meta(&self) -> Vec<(String, String)> {
        let width = robo_spatial::ExecTier::detect().f64_lane_width();
        vec![
            ("cpu_model".to_owned(), self.cpu_model.clone()),
            ("features".to_owned(), self.features.clone()),
            ("cores".to_owned(), self.cores.to_string()),
            ("rustc".to_owned(), self.rustc.clone()),
            ("tier".to_owned(), self.tier.clone()),
            ("f64_lane_width".to_owned(), width.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_detection_populates_every_field() {
        let h = HostInfo::detect();
        assert!(!h.cpu_model.is_empty());
        assert!(h.cores >= 1);
        assert!(h.rustc.contains("rustc") || h.rustc == "unknown");
        assert_eq!(
            h.tier,
            "auto"
                .parse::<robo_spatial::ExecTier>()
                .unwrap()
                .to_string()
        );
    }

    #[test]
    fn trace_meta_carries_tier_and_lane_width() {
        let meta = HostInfo::detect().trace_meta();
        let get = |k: &str| {
            meta.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .expect("key present")
        };
        assert_eq!(get("tier"), robo_spatial::ExecTier::detect().to_string());
        let width: usize = get("f64_lane_width").parse().unwrap();
        assert!(width == 2 || width == 4);
    }
}
