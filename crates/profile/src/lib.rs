//! Workload analysis of the dynamics kernels.
//!
//! The paper's accelerator design is justified by workload analysis (§5.1,
//! §8): the dynamics gradient is "compute-bound", spends "less than around
//! 10% of clock cycles on memory stalls", its "working set fits in a 32 kB
//! L1 cache", and most of its work is "matrix-vector multiplication using
//! matrices that are small (6×6 elements) and middlingly sparse (around
//! 30% to 60% sparse)". This crate reproduces that analysis from first
//! principles:
//!
//! * [`Counted`] — an operation-counting scalar: every arithmetic op on it
//!   increments thread-local counters, so running *the actual kernels*
//!   over it yields exact operation counts (no hand math, no sampling);
//! * [`count_ops`] — scoped counting;
//! * [`kernel_workload`] / [`WorkloadReport`] — the §8-style report:
//!   per-step operation counts, multiply fraction, working-set estimate
//!   vs the 32 kB L1, and arithmetic intensity.
//!
//! # Example
//!
//! ```
//! use robo_profile::{count_ops, Counted};
//! use robo_spatial::Scalar;
//!
//! let counts = count_ops(|| {
//!     let a = Counted::from_f64(2.0);
//!     let b = Counted::from_f64(3.0);
//!     let _ = a * b + a;
//! });
//! assert_eq!(counts.muls, 1);
//! assert_eq!(counts.adds, 1);
//! ```

#![warn(missing_docs)]
// Index-based loops over fixed-size matrix dimensions are clearer than
// iterator chains in this numerical code.
#![allow(clippy::needless_range_loop)]

use core::cell::Cell;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use robo_dynamics::{mass_matrix_inverse, rnea, rnea_derivatives, DynamicsModel};
use robo_model::RobotModel;
use robo_spatial::Scalar;

thread_local! {
    static COUNTS: Cell<OpCounts> = const { Cell::new(OpCounts::zero()) };
}

/// Operation counts captured by [`count_ops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Additions.
    pub adds: u64,
    /// Subtractions.
    pub subs: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
    /// Negations.
    pub negs: u64,
}

impl OpCounts {
    const fn zero() -> Self {
        Self {
            adds: 0,
            subs: 0,
            muls: 0,
            divs: 0,
            negs: 0,
        }
    }

    /// Total floating-point operations (negations excluded — they are
    /// sign-bit flips in hardware).
    pub fn flops(&self) -> u64 {
        self.adds + self.subs + self.muls + self.divs
    }

    /// Fraction of operations that are multiplies.
    pub fn mul_fraction(&self) -> f64 {
        if self.flops() == 0 {
            0.0
        } else {
            self.muls as f64 / self.flops() as f64
        }
    }
}

fn bump(f: impl FnOnce(&mut OpCounts)) {
    COUNTS.with(|c| {
        let mut v = c.get();
        f(&mut v);
        c.set(v);
    });
}

/// Runs `f` and returns the arithmetic operations performed on [`Counted`]
/// values during the call (thread-local; nested calls compose).
pub fn count_ops<F: FnOnce()>(f: F) -> OpCounts {
    let before = COUNTS.with(|c| c.get());
    f();
    let after = COUNTS.with(|c| c.get());
    OpCounts {
        adds: after.adds - before.adds,
        subs: after.subs - before.subs,
        muls: after.muls - before.muls,
        divs: after.divs - before.divs,
        negs: after.negs - before.negs,
    }
}

/// A counting scalar: `f64` semantics, with every arithmetic operation
/// recorded in thread-local counters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Counted(f64);

impl Counted {
    /// The wrapped value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Counted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

macro_rules! counted_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $field:ident, $op:tt) => {
        impl $trait for Counted {
            type Output = Counted;

            #[inline]
            // The counter increment inside an arithmetic impl is the whole
            // point of this type.
            #[allow(clippy::suspicious_arithmetic_impl)]
            fn $method(self, rhs: Counted) -> Counted {
                bump(|c| c.$field += 1);
                Counted(self.0 $op rhs.0)
            }
        }

        impl $assign_trait for Counted {
            #[inline]
            fn $assign_method(&mut self, rhs: Counted) {
                *self = *self $op rhs;
            }
        }
    };
}

counted_binop!(Add, add, AddAssign, add_assign, adds, +);
counted_binop!(Sub, sub, SubAssign, sub_assign, subs, -);
counted_binop!(Mul, mul, MulAssign, mul_assign, muls, *);
counted_binop!(Div, div, DivAssign, div_assign, divs, /);

impl Neg for Counted {
    type Output = Counted;

    #[inline]
    fn neg(self) -> Counted {
        bump(|c| c.negs += 1);
        Counted(-self.0)
    }
}

impl Scalar for Counted {
    fn name() -> String {
        "counted(f64)".to_owned()
    }

    fn zero() -> Self {
        Counted(0.0)
    }

    fn one() -> Self {
        Counted(1.0)
    }

    fn from_f64(value: f64) -> Self {
        Counted(value)
    }

    fn to_f64(self) -> f64 {
        self.0
    }

    fn resolution() -> f64 {
        f64::EPSILON
    }
}

/// The §8-style workload report for the dynamics gradient kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadReport {
    /// Degrees of freedom of the analyzed robot.
    pub dof: usize,
    /// Operations in step 1 (inverse dynamics).
    pub id_ops: OpCounts,
    /// Operations in step 2 (∇ inverse dynamics).
    pub grad_ops: OpCounts,
    /// Operations in step 3 (−M⁻¹ multiplication).
    pub minv_ops: OpCounts,
    /// Estimated working set in bytes (all per-link state, the joint
    /// matrices, and the gradient outputs at 4 bytes per value — the
    /// paper's 32-bit operands).
    pub working_set_bytes: usize,
}

impl WorkloadReport {
    /// Total operations across the kernel.
    pub fn total(&self) -> OpCounts {
        OpCounts {
            adds: self.id_ops.adds + self.grad_ops.adds + self.minv_ops.adds,
            subs: self.id_ops.subs + self.grad_ops.subs + self.minv_ops.subs,
            muls: self.id_ops.muls + self.grad_ops.muls + self.minv_ops.muls,
            divs: self.id_ops.divs + self.grad_ops.divs + self.minv_ops.divs,
            negs: self.id_ops.negs + self.grad_ops.negs + self.minv_ops.negs,
        }
    }

    /// Whether the working set fits a cache of the given size (the paper's
    /// reference point is a 32 kB L1, §8).
    pub fn fits_cache(&self, cache_bytes: usize) -> bool {
        self.working_set_bytes <= cache_bytes
    }

    /// Arithmetic intensity: operations per byte of working set touched.
    /// Values well above ~1 flop/byte mark a compute-bound kernel on any
    /// modern machine.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total().flops() as f64 / self.working_set_bytes as f64
    }
}

/// Measures the dynamics-gradient kernel's workload on a robot by running
/// the real implementation over the counting scalar.
pub fn kernel_workload(robot: &RobotModel) -> WorkloadReport {
    let n = robot.dof();
    let model = DynamicsModel::<Counted>::new(robot);
    let q: Vec<Counted> = (0..n)
        .map(|i| Counted::from_f64(0.3 * i as f64 - 0.5))
        .collect();
    let qd: Vec<Counted> = (0..n).map(|i| Counted::from_f64(0.1 * i as f64)).collect();
    let qdd: Vec<Counted> = (0..n)
        .map(|i| Counted::from_f64(-0.2 * i as f64 + 0.4))
        .collect();

    // M⁻¹ is a host-side input to the kernel; build it outside the counted
    // sections so the report covers exactly Algorithm 1's three steps.
    let minv = mass_matrix_inverse(&model, &q).expect("valid mass matrix");

    let mut cache = None;
    let id_ops = count_ops(|| {
        cache = Some(rnea(&model, &q, &qd, &qdd));
    });
    let cache = cache.expect("rnea ran").cache;
    let mut grad = None;
    let grad_ops = count_ops(|| {
        grad = Some(rnea_derivatives(&model, &qd, &cache));
    });
    let g = grad.expect("derivatives ran");
    let minv_ops = count_ops(|| {
        let _dq = minv.mul_mat(&g.dtau_dq);
        let _dqd = minv.mul_mat(&g.dtau_dqd);
    });

    // Working set: per-link X (rot 9 + pos 3), I (10), S (6), v/a/f (18),
    // per-datapath dv/da/df (18 each, 2n datapaths), q/q̇/q̈ (3n), M⁻¹ (n²)
    // and the two n×n outputs — all 32-bit values (§6.2).
    let per_link = 9 + 3 + 10 + 6 + 18;
    let per_datapath = 18;
    let words = n * per_link + 2 * n * per_datapath + 3 * n + n * n + 2 * n * n;
    let working_set_bytes = 4 * words;

    WorkloadReport {
        dof: n,
        id_ops,
        grad_ops,
        minv_ops,
        working_set_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;

    #[test]
    fn counted_arithmetic_matches_f64() {
        let a = Counted::from_f64(3.0);
        let b = Counted::from_f64(4.0);
        assert_eq!((a * b + a - b).value(), 11.0);
        assert_eq!((a / b).value(), 0.75);
        assert_eq!((-a).value(), -3.0);
    }

    #[test]
    fn counting_is_exact() {
        let c = count_ops(|| {
            let a = Counted::from_f64(1.0);
            let b = Counted::from_f64(2.0);
            let _ = a + b;
            let _ = a - b;
            let _ = a * b;
            let _ = a * b;
            let _ = a / b;
            let _ = -a;
        });
        assert_eq!(
            c,
            OpCounts {
                adds: 1,
                subs: 1,
                muls: 2,
                divs: 1,
                negs: 1
            }
        );
    }

    #[test]
    fn nested_counting_composes() {
        let outer = count_ops(|| {
            let inner = count_ops(|| {
                let _ = Counted::from_f64(1.0) * Counted::from_f64(2.0);
            });
            assert_eq!(inner.muls, 1);
            let _ = Counted::from_f64(1.0) + Counted::from_f64(2.0);
        });
        assert_eq!(outer.muls, 1);
        assert_eq!(outer.adds, 1);
    }

    #[test]
    fn gradient_dominates_kernel_work() {
        // §3: ∇ID is "the step of Algorithm 1 with the largest
        // computational workload".
        let report = kernel_workload(&robots::iiwa14());
        assert!(report.grad_ops.flops() > report.id_ops.flops());
        assert!(report.grad_ops.flops() > report.minv_ops.flops());
    }

    #[test]
    fn workload_is_mostly_multiplies() {
        // "Most of the workload is matrix-vector multiplication" (§5.1):
        // the multiply fraction sits near one multiply per add.
        let report = kernel_workload(&robots::iiwa14());
        let frac = report.total().mul_fraction();
        assert!((0.35..0.65).contains(&frac), "multiply fraction {frac:.2}");
    }

    #[test]
    fn working_set_fits_l1() {
        // §8: "working set fits in a 32 kB L1 cache".
        let report = kernel_workload(&robots::iiwa14());
        assert!(
            report.fits_cache(32 * 1024),
            "iiwa working set {} B exceeds 32 kB",
            report.working_set_bytes
        );
        assert!(report.arithmetic_intensity() > 1.0, "compute-bound kernel");
    }

    #[test]
    fn gradient_work_scales_quadratically() {
        // §5.2: "the total amount of work in the ∇ID step grows with
        // O(N²)" — doubling the links should roughly quadruple it.
        let w4 = kernel_workload(&robots::serial_chain(4, robo_model::JointType::RevoluteZ));
        let w8 = kernel_workload(&robots::serial_chain(8, robo_model::JointType::RevoluteZ));
        let ratio = w8.grad_ops.flops() as f64 / w4.grad_ops.flops() as f64;
        assert!((2.8..5.0).contains(&ratio), "∇ID scaling ratio {ratio:.2}");
        // While ID scales linearly.
        let id_ratio = w8.id_ops.flops() as f64 / w4.id_ops.flops() as f64;
        assert!(
            (1.6..2.6).contains(&id_ratio),
            "ID scaling ratio {id_ratio:.2}"
        );
    }
}
