//! The GPU baseline model.
//!
//! We have no RTX 2080 in this environment, so the GPU baseline is an
//! analytic latency model (see DESIGN.md's substitution table). It encodes
//! the *mechanisms* the paper identifies rather than a curve fit to each
//! figure:
//!
//! * "The GPU ... is a platform optimized for parallel throughput, not the
//!   latency of a single calculation" (§6.2);
//! * "The algorithm is also very serial because of inter-loop dependencies
//!   in the forward and backward passes, and joining of partial
//!   derivatives in ∇ID for M⁻¹ multiplications, forcing many
//!   synchronization points and causing overall poor thread occupancy";
//! * kernel-launch and transfer overheads flatten batch scaling, and
//!   throughput only helps once the batch exceeds the SM count
//!   ("Beginning at 64 time steps ... the GPU benefits from high
//!   throughput", §6.3).
//!
//! The constants are calibrated once against the paper's two anchor points
//! (86× slower than the FPGA single-shot; CPU crossover at 64 steps with
//! near-flat scaling below the SM count) and then used for *all*
//! experiments.

use crate::LatencySegments;

/// Analytic latency model of the GPU baseline (RTX 2080-class, Table 1).
///
/// # Examples
///
/// ```
/// use robo_baselines::GpuModel;
///
/// let gpu = GpuModel::rtx2080();
/// // Single-shot latency is tens of microseconds (Figure 10's GPU bar)...
/// assert!(gpu.single_latency_s(7) > 40e-6);
/// // ...but batches amortize well below the SM count (Figure 13).
/// let per_step = gpu.batch_latency_s(7, 46) / 46.0;
/// assert!(per_step < gpu.single_latency_s(7) / 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Kernel launch + driver overhead per invocation.
    pub kernel_launch_s: f64,
    /// Cost of one grid-wide synchronization step; the forward and
    /// backward passes each serialize `N` of these.
    pub sync_per_link_s: f64,
    /// Cost of the `M⁻¹` join + multiply phase per invocation.
    pub minv_join_s: f64,
    /// Streaming multiprocessors (RTX 2080: 46).
    pub sm_count: usize,
    /// Additional per-SM-wave cost once the batch exceeds the SM count.
    pub wave_s: f64,
    /// Host↔device transfer overhead per batch (PCIe Gen 3).
    pub transfer_overhead_s: f64,
    /// Per-time-step transfer time (PCIe Gen 3, input + output payloads).
    pub transfer_per_step_s: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        Self::rtx2080()
    }
}

impl GpuModel {
    /// The calibrated RTX 2080-class model.
    pub fn rtx2080() -> Self {
        Self {
            kernel_launch_s: 5.0e-6,
            sync_per_link_s: 2.75e-6,
            minv_join_s: 9.0e-6,
            sm_count: 46,
            wave_s: 12.0e-6,
            transfer_overhead_s: 10.0e-6,
            transfer_per_step_s: 0.06e-6,
        }
    }

    /// Latency of a single gradient computation (Figure 10's GPU bar),
    /// for a robot whose longest limb has `n_links` links.
    pub fn single_latency_s(&self, n_links: usize) -> f64 {
        self.single_segments(n_links).total()
    }

    /// The Figure 10 segment breakdown for a single computation.
    pub fn single_segments(&self, n_links: usize) -> LatencySegments {
        // ID runs concurrently with ∇ID, surfacing only its launch share.
        let id_s = self.kernel_launch_s;
        // ∇ID: 2·N serialized grid syncs (forward + backward pass).
        let grad_s = 2.0 * n_links as f64 * self.sync_per_link_s;
        let minv_s = self.minv_join_s;
        LatencySegments {
            id_s,
            grad_s,
            minv_s,
        }
    }

    /// Round-trip latency (including transfers) for a batch of `timesteps`
    /// gradient computations — the Figure 13 GPU curve.
    ///
    /// All time steps run in parallel across SMs; the serial sync chain is
    /// paid once per batch, and extra "waves" appear once the batch exceeds
    /// the SM count.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0`.
    pub fn batch_latency_s(&self, n_links: usize, timesteps: usize) -> f64 {
        assert!(timesteps > 0, "need at least one time step");
        let waves = timesteps.div_ceil(self.sm_count);
        self.transfer_overhead_s
            + timesteps as f64 * self.transfer_per_step_s
            + self.kernel_launch_s
            + 2.0 * n_links as f64 * self.sync_per_link_s
            + self.minv_join_s
            + (waves - 1) as f64 * self.wave_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_latency_calibrated_to_paper_ratio() {
        // Figure 10: GPU ≈ 86× slower than the 0.611 µs FPGA single-shot.
        let gpu = GpuModel::rtx2080();
        let fpga_s = 34.0 / 55.6e6;
        let ratio = gpu.single_latency_s(7) / fpga_s;
        assert!(
            (70.0..=100.0).contains(&ratio),
            "GPU/FPGA single-shot ratio {ratio:.0} out of band"
        );
    }

    #[test]
    fn grad_dominates_single_latency() {
        // "It experiences an especially long latency for ∇ID, the step of
        // Algorithm 1 with the largest computational workload" (§6.2).
        let seg = GpuModel::rtx2080().single_segments(7);
        assert!(seg.grad_s > seg.id_s + seg.minv_s);
    }

    #[test]
    fn batch_scaling_is_flat_below_sm_count() {
        let gpu = GpuModel::rtx2080();
        let t10 = gpu.batch_latency_s(7, 10);
        let t32 = gpu.batch_latency_s(7, 32);
        let t128 = gpu.batch_latency_s(7, 128);
        // Below 46 steps the batch fits one wave: nearly flat.
        assert!((t32 - t10) / t10 < 0.05);
        // Beyond the SM count extra waves appear.
        assert!(t128 > t32);
    }

    #[test]
    fn longer_limbs_cost_more() {
        let gpu = GpuModel::rtx2080();
        assert!(gpu.single_latency_s(12) > gpu.single_latency_s(3));
    }

    #[test]
    #[should_panic(expected = "at least one time step")]
    fn zero_batch_panics() {
        let _ = GpuModel::rtx2080().batch_latency_s(7, 0);
    }
}
