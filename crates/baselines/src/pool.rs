//! A small persistent thread pool.
//!
//! The paper's CPU baseline "was parallelized across the trajectory time
//! steps using a thread pool so that the overheads of creating and joining
//! threads did not impact the timing of the region of interest" (§6.1).
//!
//! The pool itself now lives in [`robo_dynamics::batch`], where the shared
//! [`BatchEngine`](robo_dynamics::batch::BatchEngine) wraps it with
//! per-worker workspaces; this module re-exports it so the historical
//! `robo_baselines::ThreadPool` path keeps working.

pub use robo_dynamics::batch::ThreadPool;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_pool_runs_batches() {
        let pool = ThreadPool::new(3);
        let out = pool.run(50, |i| 2 * i);
        assert_eq!(out.len(), 50);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
        let empty: Vec<usize> = pool.run(0, |i| i);
        assert!(empty.is_empty());
    }
}
