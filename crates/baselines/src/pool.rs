//! A small persistent thread pool.
//!
//! The paper's CPU baseline "was parallelized across the trajectory time
//! steps using a thread pool so that the overheads of creating and joining
//! threads did not impact the timing of the region of interest" (§6.1).
//! This is that thread pool: workers live for the pool's lifetime and pull
//! batch indices from a shared counter.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

enum Message {
    Run(Job),
    Shutdown,
}

/// A fixed-size pool of persistent worker threads.
///
/// # Examples
///
/// ```
/// use robo_baselines::ThreadPool;
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let out = pool.run_batch(100, Arc::new(|i: usize| i * i));
/// assert_eq!(out[9], 81);
/// ```
#[derive(Debug)]
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    sender: mpsc::Sender<Message>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one worker");
        let (sender, receiver) = mpsc::channel::<Message>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    let msg = {
                        let guard = rx.lock().expect("pool receiver poisoned");
                        guard.recv()
                    };
                    match msg {
                        Ok(Message::Run(job)) => job(),
                        Ok(Message::Shutdown) | Err(_) => break,
                    }
                })
            })
            .collect();
        Self { workers, sender }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_default_size() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(0..count)` across the pool and returns the results in index
    /// order. Work is distributed dynamically (an atomic index), so uneven
    /// item costs balance out.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while processing an item.
    pub fn run_batch<T, F>(&self, count: usize, f: Arc<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        if count == 0 {
            return Vec::new();
        }
        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..count).map(|_| None).collect()));
        let next = Arc::new(AtomicUsize::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));

        let workers = self.workers.len().min(count);
        for _ in 0..workers {
            let f = Arc::clone(&f);
            let results = Arc::clone(&results);
            let next = Arc::clone(&next);
            let done = Arc::clone(&done);
            let job: Job = Box::new(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let value = f(i);
                    results.lock().expect("results poisoned")[i] = Some(value);
                }
                let (lock, cv) = &*done;
                *lock.lock().expect("done poisoned") += 1;
                cv.notify_all();
            });
            self.sender
                .send(Message::Run(job))
                .expect("pool workers gone");
        }

        let (lock, cv) = &*done;
        let mut finished = lock.lock().expect("done poisoned");
        while *finished < workers {
            finished = cv.wait(finished).expect("done poisoned");
        }
        drop(finished);

        // Workers may still hold their Arc clones for an instant after
        // signalling completion, so take the data out under the lock rather
        // than unwrapping the Arc.
        let mut guard = results.lock().expect("results poisoned");
        std::mem::take(&mut *guard)
            .into_iter()
            .map(|x| x.expect("worker panicked before storing a result"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.sender.send(Message::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_in_order() {
        let pool = ThreadPool::new(3);
        let out = pool.run_batch(50, Arc::new(|i: usize| 2 * i));
        assert_eq!(out.len(), 50);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
    }

    #[test]
    fn empty_batch() {
        let pool = ThreadPool::new(2);
        let out: Vec<usize> = pool.run_batch(0, Arc::new(|i: usize| i));
        assert!(out.is_empty());
    }

    #[test]
    fn batch_smaller_than_pool() {
        let pool = ThreadPool::new(8);
        let out = pool.run_batch(3, Arc::new(|i: usize| i + 1));
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn reusable_across_batches() {
        let pool = ThreadPool::new(4);
        for round in 0..5 {
            let out = pool.run_batch(16, Arc::new(move |i: usize| i * round));
            assert_eq!(out[3], 3 * round);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }
}
