//! The measured CPU baseline.
//!
//! The paper's CPU baseline is Pinocchio's analytical dynamics-gradient on
//! a quad-core i7-7700, parallelized across trajectory time steps with a
//! thread pool (§6.1). Ours is the same algorithm (Algorithm 1 via
//! `robo-dynamics`), in Rust, actually measured on the machine running the
//! experiments — a real baseline, not a model (see DESIGN.md).

use crate::LatencySegments;
use robo_dynamics::batch::{BatchEngine, GradientState};
use robo_dynamics::engine::{CpuAnalytic, GradientBackend, GradientOutput};
use robo_dynamics::{
    forward_dynamics, mass_matrix_inverse, rnea, rnea_derivatives, DynamicsGradient, DynamicsModel,
};
use robo_model::RobotModel;
use robo_spatial::MatN;
use std::sync::Arc;
use std::time::Instant;

/// One time step's kernel inputs: the quantities the host hands the
/// gradient kernel (`q̈` and `M⁻¹` computed earlier in the optimization).
#[derive(Debug, Clone)]
pub struct GradientInput {
    /// Joint positions.
    pub q: Vec<f64>,
    /// Joint velocities.
    pub qd: Vec<f64>,
    /// Joint accelerations (from the earlier forward-dynamics evaluation).
    pub qdd: Vec<f64>,
    /// Inverse mass matrix.
    pub minv: MatN<f64>,
}

impl GradientInput {
    /// Builds a kernel input from a state and torque by running forward
    /// dynamics (what the host does earlier in the optimization loop).
    ///
    /// # Panics
    ///
    /// Panics if the model's mass matrix is singular (invalid model).
    pub fn from_state(model: &DynamicsModel<f64>, q: &[f64], qd: &[f64], tau: &[f64]) -> Self {
        let qdd = forward_dynamics(model, q, qd, tau).expect("valid mass matrix");
        let minv = mass_matrix_inverse(model, q).expect("valid mass matrix");
        Self {
            q: q.to_vec(),
            qd: qd.to_vec(),
            qdd,
            minv,
        }
    }
}

/// The CPU baseline: the engine layer's [`CpuAnalytic`] backend on the
/// host, run through the process-wide [`BatchEngine`] across time steps.
#[derive(Debug)]
pub struct CpuBaseline {
    backend: CpuAnalytic<f64>,
    out: GradientOutput,
    engine: &'static BatchEngine,
}

impl CpuBaseline {
    /// Builds the baseline for a robot on the shared engine (one worker per
    /// hardware thread).
    pub fn new(robot: &RobotModel) -> Self {
        let backend = CpuAnalytic::new(robot);
        Self {
            out: GradientOutput::for_dof(backend.dof()),
            backend,
            engine: BatchEngine::global(),
        }
    }

    /// The prepared dynamics model.
    pub fn model(&self) -> &DynamicsModel<f64> {
        self.backend.model()
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Computes one dynamics gradient (the accelerator's exact kernel
    /// scope: Algorithm 1 given `q̈` and `M⁻¹`) through the engine layer's
    /// warm [`CpuAnalytic`] backend.
    ///
    /// # Panics
    ///
    /// Panics if the input's dimensions disagree with the robot's joint
    /// count.
    pub fn compute(&mut self, input: &GradientInput) -> DynamicsGradient<f64> {
        self.backend
            .gradient_into(&input.q, &input.qd, &input.qdd, &input.minv, &mut self.out)
            .expect("input dimensions must match the model");
        self.out.to_dynamics_gradient()
    }

    /// Computes gradients for a batch of time steps in parallel, one
    /// backend fork with a reusable workspace per worker (allocation-free
    /// steady state).
    ///
    /// # Panics
    ///
    /// Panics if any input's dimensions disagree with the robot's joint
    /// count.
    pub fn compute_batch(&self, inputs: Arc<Vec<GradientInput>>) -> Vec<DynamicsGradient<f64>> {
        let states: Vec<GradientState<'_, f64>> = inputs
            .iter()
            .map(|inp| GradientState {
                q: &inp.q,
                qd: &inp.qd,
                qdd: &inp.qdd,
                minv: &inp.minv,
            })
            .collect();
        self.backend
            .gradient_batch_on(self.engine, &states)
            .expect("input dimensions must match the model")
    }

    /// Measures the single-computation latency (mean of `trials`), the
    /// paper's Figure 10 CPU quantity.
    pub fn time_single(&mut self, input: &GradientInput, trials: usize) -> f64 {
        // Warm up caches and the branch predictor.
        for _ in 0..trials.min(100) {
            std::hint::black_box(self.compute(input));
        }
        let start = Instant::now();
        for _ in 0..trials {
            std::hint::black_box(self.compute(input));
        }
        start.elapsed().as_secs_f64() / trials as f64
    }

    /// Measures the single-computation latency broken into Algorithm 1's
    /// three steps (Figure 10's stacked segments).
    pub fn time_segments(&self, input: &GradientInput, trials: usize) -> LatencySegments {
        let model = self.backend.model();
        let n = model.dof();
        // Step 1: ID.
        let start = Instant::now();
        for _ in 0..trials {
            std::hint::black_box(rnea(model.as_ref(), &input.q, &input.qd, &input.qdd));
        }
        let id_s = start.elapsed().as_secs_f64() / trials as f64;
        // Steps 1+2 (∇ID needs the ID cache; measure incrementally).
        let cache = rnea(model.as_ref(), &input.q, &input.qd, &input.qdd).cache;
        let start = Instant::now();
        for _ in 0..trials {
            std::hint::black_box(rnea_derivatives(model.as_ref(), &input.qd, &cache));
        }
        let grad_s = start.elapsed().as_secs_f64() / trials as f64;
        // Step 3: −M⁻¹ multiplication.
        let g = rnea_derivatives(model.as_ref(), &input.qd, &cache);
        let start = Instant::now();
        for _ in 0..trials {
            std::hint::black_box(input.minv.mul_mat(&g.dtau_dq));
            std::hint::black_box(input.minv.mul_mat(&g.dtau_dqd));
        }
        let minv_s = start.elapsed().as_secs_f64() / trials as f64;
        let _ = n;
        LatencySegments {
            id_s,
            grad_s,
            minv_s,
        }
    }

    /// Measures the wall-clock time to process `inputs` across the pool
    /// (mean of `trials`) — the Figure 13 CPU quantity (no I/O: the data is
    /// already in host memory).
    pub fn time_batch(&self, inputs: &Arc<Vec<GradientInput>>, trials: usize) -> f64 {
        std::hint::black_box(self.compute_batch(Arc::clone(inputs)));
        let start = Instant::now();
        for _ in 0..trials {
            std::hint::black_box(self.compute_batch(Arc::clone(inputs)));
        }
        start.elapsed().as_secs_f64() / trials as f64
    }
}

/// Builds a batch of *trajectory-shaped* kernel inputs: the robot is
/// rolled forward from rest under smooth bounded torques, so successive
/// time steps are dynamically consistent — exactly what an MPC solver
/// hands the accelerator ("each time step requires one dynamics gradient
/// calculation", §6.3).
///
/// # Panics
///
/// Panics if `timesteps == 0` or `dt <= 0`.
pub fn trajectory_inputs(
    robot: &RobotModel,
    timesteps: usize,
    dt: f64,
    seed: u64,
) -> Vec<GradientInput> {
    assert!(timesteps > 0, "need at least one time step");
    assert!(dt > 0.0, "dt must be positive");
    let model = DynamicsModel::<f64>::new(robot);
    let n = model.dof();
    let mut state = seed.max(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    // Smooth torque profile: per-joint sinusoids around gravity hold.
    let amps: Vec<f64> = (0..n).map(|_| 3.0 * next()).collect();
    let freqs: Vec<f64> = (0..n).map(|_| 1.0 + 2.0 * next().abs()).collect();

    let mut q = vec![0.0; n];
    let mut qd = vec![0.0; n];
    let mut out = Vec::with_capacity(timesteps);
    for k in 0..timesteps {
        let hold = crate::cpu::gravity_hold(&model, &q);
        let t = k as f64 * dt;
        let tau: Vec<f64> = (0..n)
            .map(|i| hold[i] + amps[i] * (freqs[i] * t).sin())
            .collect();
        let input = GradientInput::from_state(&model, &q, &qd, &tau);
        // Semi-implicit Euler step to the next trajectory point.
        for i in 0..n {
            qd[i] += dt * input.qdd[i];
            q[i] += dt * qd[i];
        }
        out.push(input);
    }
    out
}

pub(crate) fn gravity_hold(model: &DynamicsModel<f64>, q: &[f64]) -> Vec<f64> {
    let zero = vec![0.0; model.dof()];
    robo_dynamics::bias_torques(model, q, &zero)
}

/// Builds a batch of random but dynamically consistent kernel inputs
/// (uniform positions/velocities/torques through forward dynamics).
pub fn random_inputs(robot: &RobotModel, timesteps: usize, seed: u64) -> Vec<GradientInput> {
    let model = DynamicsModel::<f64>::new(robot);
    let n = model.dof();
    let mut state = seed.max(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    (0..timesteps)
        .map(|_| {
            let q: Vec<f64> = (0..n).map(|_| next()).collect();
            let qd: Vec<f64> = (0..n).map(|_| next()).collect();
            let tau: Vec<f64> = (0..n).map(|_| 5.0 * next()).collect();
            GradientInput::from_state(&model, &q, &qd, &tau)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;

    #[test]
    fn compute_matches_direct_call() {
        let robot = robots::iiwa14();
        let mut cpu = CpuBaseline::new(&robot);
        let input = &random_inputs(&robot, 1, 5)[0];
        let got = cpu.compute(input);
        let model = DynamicsModel::<f64>::new(&robot);
        // Reference oracle: the raw kernel the backend wraps.
        let want = robo_dynamics::dynamics_gradient_from_qdd(
            &model,
            &input.q,
            &input.qd,
            &input.qdd,
            &input.minv,
        );
        assert!(got.dqdd_dq.max_abs_diff(&want.dqdd_dq) < 1e-12);
    }

    #[test]
    fn batch_matches_serial() {
        let robot = robots::hyq();
        let mut cpu = CpuBaseline::new(&robot);
        let inputs = Arc::new(random_inputs(&robot, 12, 9));
        let batch = cpu.compute_batch(Arc::clone(&inputs));
        assert_eq!(batch.len(), 12);
        for (b, input) in batch.iter().zip(inputs.iter()) {
            let serial = cpu.compute(input);
            assert!(b.dqdd_dq.max_abs_diff(&serial.dqdd_dq) < 1e-12);
        }
    }

    #[test]
    fn trajectory_inputs_are_smooth_and_bounded() {
        let robot = robots::iiwa14();
        let inputs = trajectory_inputs(&robot, 40, 0.01, 3);
        assert_eq!(inputs.len(), 40);
        // Consecutive states differ by O(dt)-scale steps, and nothing
        // diverges over the rollout.
        for w in inputs.windows(2) {
            for i in 0..7 {
                let dq = (w[1].q[i] - w[0].q[i]).abs();
                assert!(dq < 0.25, "non-smooth step {dq}");
            }
        }
        assert!(inputs
            .iter()
            .all(|inp| inp.q.iter().all(|v| v.is_finite() && v.abs() < 20.0)));
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn trajectory_inputs_validate_dt() {
        let _ = trajectory_inputs(&robots::iiwa14(), 4, 0.0, 1);
    }

    #[test]
    fn timing_is_positive_and_sane() {
        let robot = robots::iiwa14();
        let mut cpu = CpuBaseline::new(&robot);
        let input = &random_inputs(&robot, 1, 11)[0];
        let t = cpu.time_single(input, 50);
        assert!(t > 0.0 && t < 1e-2, "single gradient took {t} s");
        let seg = cpu.time_segments(input, 50);
        assert!(seg.grad_s > 0.0);
        assert!(seg.total() < 1e-2);
    }
}
