//! Baselines for the paper's evaluation: a *measured* CPU implementation
//! and a *modeled* GPU (see DESIGN.md's substitution table).
//!
//! * [`CpuBaseline`] — the dynamics-gradient kernel on the host CPU,
//!   parallelized across trajectory time steps through the shared
//!   [`robo_dynamics::batch::BatchEngine`] (a persistent [`ThreadPool`]
//!   with per-worker workspaces), timed with `std::time::Instant` (the
//!   paper's Pinocchio-on-i7 counterpart);
//! * [`GpuModel`] — an analytic RTX 2080-class latency model encoding
//!   kernel-launch overhead, the serialized forward/backward sync chain,
//!   and SM-wave throughput;
//! * [`LatencySegments`] — Figure 10's ID / ∇ID / M⁻¹ breakdown, shared by
//!   all platforms.
//!
//! # Example
//!
//! ```
//! use robo_baselines::{random_inputs, CpuBaseline};
//! use robo_model::robots;
//!
//! let robot = robots::iiwa14();
//! let mut cpu = CpuBaseline::new(&robot);
//! let input = &robo_baselines::random_inputs(&robot, 1, 42)[0];
//! let grad = cpu.compute(input);
//! assert_eq!(grad.dqdd_dq.rows(), 7);
//! ```

#![warn(missing_docs)]

mod cpu;
mod gpu;
mod pool;

pub use cpu::{random_inputs, trajectory_inputs, CpuBaseline, GradientInput};
pub use gpu::GpuModel;
pub use pool::ThreadPool;

/// A single-computation latency broken into Algorithm 1's three steps,
/// as stacked in the paper's Figure 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySegments {
    /// Step 1: inverse dynamics.
    pub id_s: f64,
    /// Step 2: ∇ inverse dynamics.
    pub grad_s: f64,
    /// Step 3: −M⁻¹ multiplication.
    pub minv_s: f64,
}

impl LatencySegments {
    /// Total latency.
    pub fn total(&self) -> f64 {
        self.id_s + self.grad_s + self.minv_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_total() {
        let s = LatencySegments {
            id_s: 1.0,
            grad_s: 2.0,
            minv_s: 3.0,
        };
        assert_eq!(s.total(), 6.0);
    }
}
