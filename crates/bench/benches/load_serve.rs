//! Serving-tier load generator: p50/p99 request latency across a
//! closed-loop client sweep, and saturated throughput of the coalescing
//! micro-batcher against naive one-request-one-gradient dispatch.
//!
//! Two measurements, both against [`GradientServer`] with a single
//! pinned worker so the comparison isolates the *coalescing* win (SIMD
//! lane fill) from thread parallelism:
//!
//! * **Closed-loop latency sweep** — N client threads, each keeping one
//!   request in flight, round-tripping through the micro-batcher. Every
//!   request's submit→response time is sampled; the 50th and 99th
//!   percentiles are recorded as `serve_<robot>_c<N>_p50_ns` /
//!   `_p99_ns` medians (the `analyse report` latency table, gated
//!   lower-is-better).
//! * **Saturated throughput** — one driver pipelines a deep window of
//!   outstanding slots so the shard queue never runs dry, first with the
//!   default lane-group coalescing (`lane_groups_per_flush = 4`), then
//!   with coalescing disabled (`= 0`: every request is dispatched alone,
//!   the naive baseline). Identical offered load, identical worker
//!   count; the ratio is recorded as the speedup
//!   `serve_batched_vs_naive_iiwa14`. The PR's acceptance floor is
//!   ≥ 1.5× — the batched path must actually fill lanes.
//!
//! Results are written to `BENCH_8.json` at the repository root
//! (override with `BENCH_OUT`). `BENCH_QUICK=1` shrinks the sweep for CI
//! and `BENCH_TRIALS=N` repeats it for the confidence-interval gate; see
//! [`robo_bench::harness`].

use robo_bench::harness::{self, BenchEnv};
use robo_bench::report::{
    median, speedup, BenchReport, HostInfo, LATENCY_P50_SUFFIX, LATENCY_P99_SUFFIX,
};
use robo_model::{robots, RobotModel};
use robo_serve::{
    GradientRequest, GradientServer, ResponseSlot, ServeConfig, ServeError, ServeStats,
};
use std::time::{Duration, Instant};

/// Submits with bounded retry on backpressure (the load generator is the
/// one client allowed to spin: it *wants* to find the saturation point).
fn submit_retry(
    server: &GradientServer,
    key: robo_serve::MorphologyKey,
    mut req: GradientRequest,
    slot: &ResponseSlot,
) {
    loop {
        match server.submit(key, req, slot) {
            Ok(()) => return,
            Err(rej) if matches!(rej.error, ServeError::Overloaded { .. }) => {
                req = rej.req;
                std::thread::yield_now();
            }
            Err(rej) => panic!("load generator rejected: {}", rej.error),
        }
    }
}

/// A request buffer filled from one of the harness's deterministic
/// gradient cases.
fn request_from_case(
    dof: usize,
    case: &(Vec<f64>, Vec<f64>, Vec<f64>, robo_spatial::MatN<f64>),
) -> GradientRequest {
    let mut req = GradientRequest::for_dof(dof);
    req.q.copy_from_slice(&case.0);
    req.qd.copy_from_slice(&case.1);
    req.qdd.copy_from_slice(&case.2);
    req.minv = case.3.clone();
    req
}

/// The `q`-th percentile of an unsorted sample set (nearest-rank).
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("comparable latencies"));
    samples[(((samples.len() - 1) as f64) * q).round() as usize]
}

/// Closed-loop sweep point: `clients` threads, one request in flight
/// each, `per_client` round trips. Returns (p50, p99) latency in ns.
fn closed_loop_latency(robot: &RobotModel, clients: usize, per_client: usize) -> (f64, f64) {
    let server = GradientServer::with_config(ServeConfig {
        workers: 1,
        // Short linger: closed-loop clients rarely fill a whole batch, so
        // the deadline, not batch-full, paces most flushes — keep the
        // latency it adds small against the kernel itself.
        max_linger: Duration::from_micros(20),
        ..ServeConfig::default()
    });
    let key = server.register(robot);
    let plan = server.plan(key).expect("registered");
    let cases = harness::gradient_cases(plan.model(), clients.max(4));

    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = server.clone();
                let case = &cases[c % cases.len()];
                let dof = plan.dof();
                scope.spawn(move || {
                    let slot = ResponseSlot::new();
                    let mut req = request_from_case(dof, case);
                    let mut samples = Vec::with_capacity(per_client);
                    // Warm-up round trip: first-flush buffer sizing.
                    submit_retry(&server, key, req, &slot);
                    req = slot.wait();
                    for _ in 0..per_client {
                        let start = Instant::now();
                        submit_retry(&server, key, req, &slot);
                        req = slot.wait();
                        samples.push(start.elapsed().as_secs_f64() * 1e9);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    (
        percentile(&mut latencies, 0.50),
        percentile(&mut latencies, 0.99),
    )
}

/// Saturated throughput: a pipelined window of `window` outstanding
/// requests driven to `total` completions per run, repeated `runs`
/// times. Returns (median ns per request, final server stats).
fn saturated_ns_per_request(
    robot: &RobotModel,
    lane_groups: usize,
    window: usize,
    total: usize,
    runs: usize,
) -> (f64, ServeStats) {
    let server = GradientServer::with_config(ServeConfig {
        workers: 1,
        lane_groups_per_flush: lane_groups,
        max_linger: Duration::from_micros(50),
        queue_capacity: 2 * window + 8,
        ..ServeConfig::default()
    });
    let key = server.register(robot);
    let plan = server.plan(key).expect("registered");
    let cases = harness::gradient_cases(plan.model(), window);
    let slots: Vec<ResponseSlot> = (0..window).map(|_| ResponseSlot::new()).collect();
    let mut parked: Vec<Option<GradientRequest>> = cases
        .iter()
        .map(|case| Some(request_from_case(plan.dof(), case)))
        .collect();

    let run = |parked: &mut Vec<Option<GradientRequest>>| -> f64 {
        let start = Instant::now();
        let mut submitted = 0usize;
        for (i, slot) in slots.iter().enumerate() {
            submit_retry(&server, key, parked[i].take().expect("parked"), slot);
            submitted += 1;
        }
        let mut completed = 0usize;
        let mut idx = 0usize;
        while completed < total {
            if parked[idx].is_none() {
                let req = slots[idx].wait();
                completed += 1;
                if submitted < total {
                    submit_retry(&server, key, req, &slots[idx]);
                    submitted += 1;
                } else {
                    parked[idx] = Some(req);
                }
            }
            idx = (idx + 1) % window;
        }
        start.elapsed().as_secs_f64() * 1e9 / total as f64
    };

    run(&mut parked); // warm-up: page in code, size flush buffers
    let mut samples: Vec<f64> = (0..runs).map(|_| run(&mut parked)).collect();
    (median(&mut samples), server.stats())
}

fn run_once(env: &BenchEnv) -> BenchReport {
    let mut report = BenchReport::new();
    report.set_host(HostInfo::detect());

    // --- Closed-loop latency sweep --------------------------------------
    let per_client = if env.quick { 32 } else { 160 };
    let sweeps: Vec<(&str, RobotModel, Vec<usize>)> = if env.quick {
        vec![("iiwa14", robots::iiwa14(), vec![1, 2, 4])]
    } else {
        vec![
            ("iiwa14", robots::iiwa14(), vec![1, 2, 4, 8]),
            ("hyq", robots::hyq(), vec![1, 4]),
        ]
    };
    for (name, robot, client_counts) in &sweeps {
        for &clients in client_counts {
            let (p50, p99) = closed_loop_latency(robot, clients, per_client);
            let stem = format!("serve_{name}_c{clients}");
            report.record_median_ns(format!("{stem}{LATENCY_P50_SUFFIX}"), p50);
            report.record_median_ns(format!("{stem}{LATENCY_P99_SUFFIX}"), p99);
            println!(
                "load_serve/{stem:<18} p50: {:8.1} us  p99: {:8.1} us \
                 ({clients} client(s) x {per_client} round trip(s))",
                p50 / 1e3,
                p99 / 1e3
            );
        }
    }

    // --- Saturated throughput: coalesced vs naive dispatch --------------
    let robot = robots::iiwa14();
    let width = robo_sim::engine::RobotPlan::new(&robot).serve_width();
    let window = 2 * 4 * width.max(1);
    let (total, runs) = if env.quick { (256, 3) } else { (2048, 7) };
    let (batched_ns, batched_stats) = saturated_ns_per_request(&robot, 4, window, total, runs);
    let (naive_ns, _) = saturated_ns_per_request(&robot, 0, window, total, runs);
    report.record_median_ns("serve_batched_saturated_ns", batched_ns);
    report.record_median_ns("serve_naive_saturated_ns", naive_ns);
    report.record_speedup("serve_batched_vs_naive_iiwa14", naive_ns / batched_ns);
    println!(
        "load_serve/serve_batched_saturated  median: {batched_ns:10.1} ns/req \
         ({} flush(es), {} ragged)",
        batched_stats.flushes, batched_stats.ragged_flushes
    );
    println!("load_serve/serve_naive_saturated    median: {naive_ns:10.1} ns/req");
    println!(
        "load_serve/serve_batched_vs_naive_iiwa14 speedup: {} \
         (window {window}, {total} req/run, 1 worker)",
        speedup(naive_ns / batched_ns)
    );
    report
}

fn main() {
    let default = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_8.json");
    harness::run_trials(&default, run_once);
}
