//! Netlist evaluation throughput: the interpreter vs the compiled tape,
//! on the iiwa-14 gradient netlists (every joint's superposed `X·`/`Xᵀ·`
//! unit — the exact circuits the simulator's serving path executes).
//!
//! * `interpreter` — string-keyed `Netlist::eval`: HashMap lookups, a
//!   fresh value vector, and per-call constant conversion (the reference
//!   oracle's cost);
//! * `interpreter_ref` — `Netlist::eval_ref`, the borrowed-output variant
//!   (removes the output-name clones, keeps the interpretive loop);
//! * `compiled` — `CompiledNetlist::eval_into` through a warm workspace:
//!   dense input slots, hoisted constants, a register-recycled flat tape,
//!   zero steady-state allocations;
//! * `compiled_batch` — the same tape streaming states through the shared
//!   `BatchEngine`.
//!
//! Measured numbers are recorded in EXPERIMENTS.md; the acceptance floor
//! for this PR is compiled ≥ 2× interpreter, single-threaded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use robo_codegen::{
    generate_x_unit_with_mask, generate_xt_unit_with_mask, optimize, CompiledNetlist,
    EvalWorkspace, Netlist,
};
use robo_dynamics::batch::BatchEngine;
use robo_model::robots;
use robo_sparsity::superposition_pattern;
use std::collections::HashMap;
use std::hint::black_box;

/// One evaluation state per joint unit, deterministic.
fn states(n_units: usize, n_inputs: usize) -> Vec<Vec<f64>> {
    (0..n_units)
        .map(|u| {
            (0..n_inputs)
                .map(|i| 0.17 * (u * n_inputs + i) as f64 % 1.9 - 0.95)
                .collect()
        })
        .collect()
}

fn bench_netlist_eval(c: &mut Criterion) {
    let robot = robots::iiwa14();
    let sup = superposition_pattern(&robot);
    let units: Vec<Netlist> = (0..robot.dof())
        .flat_map(|j| {
            [
                generate_x_unit_with_mask(&robot, j, sup),
                generate_xt_unit_with_mask(&robot, j, sup),
            ]
        })
        .collect();
    let compiled: Vec<CompiledNetlist<f64>> = units
        .iter()
        .map(|u| CompiledNetlist::compile(&optimize(u)))
        .collect();
    let n_inputs = compiled[0].input_names().len();
    let vals = states(units.len(), n_inputs);
    let maps: Vec<HashMap<String, f64>> = compiled
        .iter()
        .zip(&vals)
        .map(|(c, v)| {
            c.input_names()
                .iter()
                .cloned()
                .zip(v.iter().copied())
                .collect()
        })
        .collect();

    let mut g = c.benchmark_group("netlist_eval");
    // One element = one full sweep over all 14 units.
    g.throughput(Throughput::Elements(units.len() as u64));

    g.bench_function(BenchmarkId::new("interpreter", "iiwa14"), |b| {
        b.iter(|| {
            for (unit, inputs) in units.iter().zip(&maps) {
                black_box(unit.eval(inputs).unwrap());
            }
        });
    });

    g.bench_function(BenchmarkId::new("interpreter_ref", "iiwa14"), |b| {
        b.iter(|| {
            for (unit, inputs) in units.iter().zip(&maps) {
                black_box(unit.eval_ref(inputs).unwrap());
            }
        });
    });

    g.bench_function(BenchmarkId::new("compiled", "iiwa14"), |b| {
        let mut ws = EvalWorkspace::new();
        let mut out = vec![0.0_f64; compiled[0].num_outputs()];
        b.iter(|| {
            for (tape, inputs) in compiled.iter().zip(&vals) {
                tape.eval_into(inputs, &mut ws, &mut out);
                black_box(&out);
            }
        });
    });

    // Batch: one tape, many states (the §6.3 trajectory workload shape).
    let engine = BatchEngine::global();
    let tape = &compiled[2]; // joint 1 forward: the §4 example unit
    for batch in [64usize, 512] {
        let batch_states = states(batch, n_inputs);
        g.bench_with_input(
            BenchmarkId::new("compiled_batch", batch),
            &batch_states,
            |b, s| {
                b.iter(|| black_box(tape.eval_batch(engine, s)));
            },
        );
    }
    g.finish();
}

/// `BENCH_QUICK=1` (CI smoke mode) shrinks sampling to a fraction of the
/// default; numbers are then indicative only.
fn config() -> Criterion {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    if quick {
        Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_millis(20))
    } else {
        Criterion::default().sample_size(50)
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_netlist_eval
}
criterion_main!(benches);
