//! Wide-lane (SoA) serving-path throughput: scalar vs `Lanes<f64, 4>`.
//!
//! Three levels of the serving stack, each measured single-threaded as
//! scalar-vs-wide (per-state results are bit-identical by construction,
//! so this is a pure throughput comparison):
//!
//! * `tape_*` — the compiled X-unit register tape (the §4 example joint's
//!   unit) evaluated over a batch of states: `eval_into` per state vs one
//!   `eval_batch_into` SoA sweep;
//! * `cpu_grad_*` — the full dynamics-gradient kernel through the
//!   [`CpuAnalytic`] backend: serial `gradient_into` loop vs the wide
//!   `gradient_batch_into` override;
//! * `accel_grad_*` — the same comparison through the simulated
//!   accelerator backend;
//!
//! plus `engine_grad_lanes4`, the two-level (threads × lanes)
//! `gradient_batch_on_into` path on the shared [`BatchEngine`] (on a
//! single-core host this adds claim overhead over the wide path, so it is
//! reported but not gated).
//!
//! The acceptance floor for this PR is `tape_lanes4` ≥ 1.5× `tape_scalar`
//! throughput. Results (median ns per state) and the speedup ratios are
//! written to `BENCH_5.json` at the repository root (override with
//! `BENCH_OUT`) — the CI artifact — and recorded in EXPERIMENTS.md.
//! `BENCH_QUICK=1` shrinks the run for CI and `BENCH_TRIALS=N` repeats it
//! for the confidence-interval gate; see [`robo_bench::harness`].

use robo_bench::harness::{self, gradient_cases, tape_states, time_median_ns, BenchEnv};
use robo_bench::report::{speedup, BenchReport, HostInfo};
use robo_codegen::{
    generate_x_unit_with_mask, optimize, BatchEvalWorkspace, CompiledNetlist, EvalWorkspace,
};
use robo_dynamics::batch::{BatchEngine, GradientState};
use robo_dynamics::engine::{CpuAnalytic, GradientBackend, GradientBatchOutput, GradientOutput};
use robo_dynamics::DynamicsModel;
use robo_model::robots;
use robo_sim::AcceleratorBackend;
use robo_sparsity::superposition_pattern;
use robo_spatial::Lanes;
use std::hint::black_box;

/// Serial reference: the trait's default batch shape (gradient_into loop
/// through one dense scratch), hand-rolled so it measures the scalar path
/// even on backends that override `gradient_batch_into`.
fn serial_batch(
    backend: &mut dyn GradientBackend,
    states: &[GradientState<'_, f64>],
    scratch: &mut GradientOutput,
    out: &mut GradientBatchOutput,
) {
    out.reset(states.len(), backend.dof());
    for (i, s) in states.iter().enumerate() {
        backend
            .gradient_into(s.q, s.qd, s.qdd, s.minv, scratch)
            .expect("dimensions match");
        out.store(i, scratch);
    }
}

fn run_once(env: &BenchEnv) -> BenchReport {
    let mut report = BenchReport::new();
    report.set_host(HostInfo::detect());

    // --- Compiled tape: scalar vs SoA lanes -----------------------------
    let robot = robots::iiwa14();
    let sup = superposition_pattern(&robot);
    let tape =
        CompiledNetlist::<f64>::compile(&optimize(&generate_x_unit_with_mask(&robot, 1, sup)));
    let n_out = tape.num_outputs();
    let states = tape_states(env.tape_batch, tape.input_names().len());

    let mut ws = EvalWorkspace::for_netlist(&tape);
    let mut out_one = vec![0.0_f64; n_out];
    let tape_scalar = time_median_ns(env.reps, env.tape_batch, || {
        for s in &states {
            tape.eval_into(s, &mut ws, &mut out_one);
            black_box(&out_one);
        }
    });

    let mut batch_ws = BatchEvalWorkspace::<Lanes<f64, 4>>::for_netlist(&tape);
    let mut out_flat = vec![0.0_f64; env.tape_batch * n_out];
    let tape_lanes = time_median_ns(env.reps, env.tape_batch, || {
        tape.eval_batch_into(&states, &mut batch_ws, &mut out_flat);
        black_box(&out_flat);
    });

    // --- Gradient backends: serial vs wide batch ------------------------
    let model = std::sync::Arc::new(DynamicsModel::<f64>::new(&robot));
    let cases = gradient_cases(&model, env.grad_batch);
    let grad_states: Vec<GradientState<'_, f64>> = cases
        .iter()
        .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
        .collect();

    let mut cpu = CpuAnalytic::<f64>::with_model(model.clone());
    let mut scratch = GradientOutput::for_dof(model.dof());
    let mut batch_out = GradientBatchOutput::new();
    let cpu_serial = time_median_ns(env.grad_reps, env.grad_batch, || {
        serial_batch(&mut cpu, &grad_states, &mut scratch, &mut batch_out);
        black_box(&batch_out);
    });
    let cpu_lanes = time_median_ns(env.grad_reps, env.grad_batch, || {
        cpu.gradient_batch_into(&grad_states, &mut batch_out)
            .expect("dimensions match");
        black_box(&batch_out);
    });

    let mut accel = AcceleratorBackend::<f64>::new(&robot);
    let accel_serial = time_median_ns(env.grad_reps, env.grad_batch, || {
        serial_batch(&mut accel, &grad_states, &mut scratch, &mut batch_out);
        black_box(&batch_out);
    });
    let accel_lanes = time_median_ns(env.grad_reps, env.grad_batch, || {
        accel
            .gradient_batch_into(&grad_states, &mut batch_out)
            .expect("dimensions match");
        black_box(&batch_out);
    });

    // --- Two-level threads × lanes scheduling ---------------------------
    let engine = BatchEngine::global();
    let engine_lanes = time_median_ns(env.grad_reps, env.grad_batch, || {
        cpu.gradient_batch_on_into(engine, &grad_states, &mut batch_out)
            .expect("dimensions match");
        black_box(&batch_out);
    });

    report.record_median_ns("tape_scalar", tape_scalar);
    report.record_median_ns("tape_lanes4", tape_lanes);
    report.record_median_ns("cpu_grad_serial", cpu_serial);
    report.record_median_ns("cpu_grad_lanes4", cpu_lanes);
    report.record_median_ns("accel_grad_serial", accel_serial);
    report.record_median_ns("accel_grad_lanes4", accel_lanes);
    report.record_median_ns("engine_grad_lanes4", engine_lanes);
    report.record_speedup("tape_lanes4_vs_scalar", tape_scalar / tape_lanes);
    report.record_speedup("cpu_lanes4_vs_serial", cpu_serial / cpu_lanes);
    report.record_speedup("accel_lanes4_vs_serial", accel_serial / accel_lanes);
    report.record_speedup("engine_vs_serial_cpu", cpu_serial / engine_lanes);

    for (name, ns) in [
        ("tape_scalar", tape_scalar),
        ("tape_lanes4", tape_lanes),
        ("cpu_grad_serial", cpu_serial),
        ("cpu_grad_lanes4", cpu_lanes),
        ("accel_grad_serial", accel_serial),
        ("accel_grad_lanes4", accel_lanes),
        ("engine_grad_lanes4", engine_lanes),
    ] {
        println!("lane_throughput/{name:<20} median: {ns:10.1} ns/state");
    }
    for name in [
        "tape_lanes4_vs_scalar",
        "cpu_lanes4_vs_serial",
        "accel_lanes4_vs_serial",
        "engine_vs_serial_cpu",
    ] {
        let ratio = report.speedup_of(name).expect("just recorded");
        println!("lane_throughput/{name:<22} speedup: {}", speedup(ratio));
    }
    report
}

fn main() {
    let default = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_5.json");
    harness::run_trials(&default, run_once);
}
