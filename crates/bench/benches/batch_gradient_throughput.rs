//! Batch dynamics-gradient throughput: the three host execution strategies
//! this workspace layers on Algorithm 1, compared on identical trajectory
//! batches (T time steps, one gradient per step — the §6.3 workload).
//!
//! * `serial_alloc` — one allocating `dynamics_gradient_from_qdd` call per
//!   step (the seed's baseline path);
//! * `serial_workspace` — one reused `GradWorkspace` driven through
//!   `dynamics_gradient_into` (zero steady-state heap allocations);
//! * `batch_engine` — the shared `BatchEngine` with one workspace per
//!   worker (the paper's §6.1 thread-pool structure).
//!
//! Measured numbers are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use robo_baselines::{random_inputs, GradientInput};
use robo_dynamics::batch::{BatchEngine, GradientState};
use robo_dynamics::{
    dynamics_gradient_from_qdd, dynamics_gradient_into, DynamicsModel, GradWorkspace,
};
use robo_model::robots;
use std::hint::black_box;

fn states_of(inputs: &[GradientInput]) -> Vec<GradientState<'_, f64>> {
    inputs
        .iter()
        .map(|inp| GradientState {
            q: &inp.q,
            qd: &inp.qd,
            qdd: &inp.qdd,
            minv: &inp.minv,
        })
        .collect()
}

fn bench_batch_gradient(c: &mut Criterion) {
    let robot = robots::iiwa14();
    let model = DynamicsModel::<f64>::new(&robot);
    let engine = BatchEngine::global();

    let mut g = c.benchmark_group("batch_gradient_throughput");
    for steps in [32usize, 128] {
        let inputs = random_inputs(&robot, steps, steps as u64);
        let states = states_of(&inputs);
        g.throughput(Throughput::Elements(steps as u64));

        g.bench_with_input(
            BenchmarkId::new("serial_alloc", steps),
            &states,
            |b, states| {
                b.iter(|| {
                    for s in states {
                        black_box(dynamics_gradient_from_qdd(&model, s.q, s.qd, s.qdd, s.minv));
                    }
                });
            },
        );

        g.bench_with_input(
            BenchmarkId::new("serial_workspace", steps),
            &states,
            |b, states| {
                let mut ws = GradWorkspace::for_model(&model);
                b.iter(|| {
                    for s in states {
                        dynamics_gradient_into(&model, s.q, s.qd, s.qdd, s.minv, &mut ws);
                        black_box(&ws.dqdd_dq);
                    }
                });
            },
        );

        g.bench_with_input(
            BenchmarkId::new("batch_engine", steps),
            &states,
            |b, states| {
                b.iter(|| black_box(engine.dynamics_gradient_batch(&model, states)));
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_batch_gradient
}
criterion_main!(benches);
