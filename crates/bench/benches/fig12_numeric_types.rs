//! Figure 12's kernel in different numeric types: software cost of the
//! dynamics gradient in `f64`, `f32`, and Q-format fixed point. (On the
//! accelerator fixed point is *cheaper*; in software it costs more — this
//! bench documents that asymmetry, which is exactly why the kernel belongs
//! in hardware.)

use criterion::{criterion_group, criterion_main, Criterion};
use robo_baselines::random_inputs;
use robo_dynamics::{dynamics_gradient_from_qdd, DynamicsModel};
use robo_fixed::{Fix14_6, Fix32_16};
use robo_model::{robots, RobotModel};
use robo_spatial::Scalar;
use std::hint::black_box;

fn bench_type<S: Scalar>(c: &mut Criterion, robot: &RobotModel, label: &str) {
    let model = DynamicsModel::<S>::new(robot);
    let input = &random_inputs(robot, 1, 0xF12)[0];
    let cast = |v: &[f64]| -> Vec<S> { v.iter().map(|x| S::from_f64(*x)).collect() };
    let (q, qd, qdd) = (cast(&input.q), cast(&input.qd), cast(&input.qdd));
    let minv = input.minv.cast::<S>();
    c.bench_function(&format!("fig12_kernel/{label}"), |b| {
        b.iter(|| {
            black_box(dynamics_gradient_from_qdd(
                &model,
                black_box(&q),
                black_box(&qd),
                black_box(&qdd),
                black_box(&minv),
            ))
        });
    });
}

fn benches_all(c: &mut Criterion) {
    let robot = robots::iiwa14();
    bench_type::<f64>(c, &robot, "f64");
    bench_type::<f32>(c, &robot, "f32");
    bench_type::<Fix32_16>(c, &robot, "fixed_16_16");
    bench_type::<Fix14_6>(c, &robot, "fixed_14_6");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = benches_all
}
criterion_main!(benches);
