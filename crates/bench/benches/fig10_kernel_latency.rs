//! Figure 10's measured column: single dynamics-gradient latency on the
//! CPU, broken into Algorithm 1's three steps, plus the simulated
//! accelerator for comparison (its latency is a static cycle count; the
//! bench measures the *simulation* cost, reported for transparency).

use criterion::{criterion_group, criterion_main, Criterion};
use robo_baselines::random_inputs;
use robo_dynamics::{dynamics_gradient_from_qdd, rnea, rnea_derivatives, DynamicsModel};
use robo_model::robots;
use robo_sim::AcceleratorSim;
use std::hint::black_box;

fn bench_cpu_steps(c: &mut Criterion) {
    let robot = robots::iiwa14();
    let model = DynamicsModel::<f64>::new(&robot);
    let input = &random_inputs(&robot, 1, 0xF10)[0];
    let cache = rnea(&model, &input.q, &input.qd, &input.qdd).cache;

    let mut g = c.benchmark_group("fig10_cpu");
    g.bench_function("step1_id", |b| {
        b.iter(|| black_box(rnea(&model, &input.q, &input.qd, &input.qdd)));
    });
    g.bench_function("step2_grad_id", |b| {
        b.iter(|| black_box(rnea_derivatives(&model, &input.qd, &cache)));
    });
    g.bench_function("full_kernel", |b| {
        b.iter(|| {
            black_box(dynamics_gradient_from_qdd(
                &model,
                &input.q,
                &input.qd,
                &input.qdd,
                &input.minv,
            ))
        });
    });
    g.finish();
}

fn bench_simulated_accelerator(c: &mut Criterion) {
    let robot = robots::iiwa14();
    let input = &random_inputs(&robot, 1, 0xF11)[0];
    let sim = AcceleratorSim::<f64>::new(&robot);
    let sim_fix = AcceleratorSim::<robo_fixed::Fix32_16>::new(&robot);
    let cast = |v: &[f64]| -> Vec<robo_fixed::Fix32_16> {
        v.iter()
            .map(|x| robo_spatial::Scalar::from_f64(*x))
            .collect()
    };
    let (qf, qdf, qddf) = (cast(&input.q), cast(&input.qd), cast(&input.qdd));
    let minvf = input.minv.cast::<robo_fixed::Fix32_16>();

    let mut g = c.benchmark_group("fig10_accel_sim");
    g.bench_function("f64", |b| {
        b.iter(|| black_box(sim.compute_gradient(&input.q, &input.qd, &input.qdd, &input.minv)));
    });
    g.bench_function("fix32_16", |b| {
        b.iter(|| black_box(sim_fix.compute_gradient(&qf, &qdf, &qddf, &minvf)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_cpu_steps, bench_simulated_accelerator
}
criterion_main!(benches);
