//! Criterion benches for the dynamics substrate kernels: RNEA, CRBA, ABA,
//! ∇RNEA, and the full gradient kernel, across the paper's three robot
//! classes. These are the software costs underlying Figures 4 and 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use robo_dynamics::{
    aba, dynamics_gradient_from_qdd, mass_matrix, rnea, rnea_derivatives, DynamicsModel,
};
use robo_model::{robots, RobotModel};
use std::hint::black_box;

fn state(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut s = seed.max(1);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    (
        (0..n).map(|_| next()).collect(),
        (0..n).map(|_| next()).collect(),
        (0..n).map(|_| next()).collect(),
    )
}

fn robots_under_test() -> Vec<RobotModel> {
    vec![robots::iiwa14(), robots::hyq(), robots::atlas()]
}

fn bench_rnea(c: &mut Criterion) {
    let mut g = c.benchmark_group("rnea");
    for robot in robots_under_test() {
        let model = DynamicsModel::<f64>::new(&robot);
        let (q, qd, qdd) = state(model.dof(), 7);
        g.bench_with_input(BenchmarkId::from_parameter(robot.name()), &model, |b, m| {
            b.iter(|| black_box(rnea(m, black_box(&q), black_box(&qd), black_box(&qdd))));
        });
    }
    g.finish();
}

fn bench_mass_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("crba_mass_matrix");
    for robot in robots_under_test() {
        let model = DynamicsModel::<f64>::new(&robot);
        let (q, _, _) = state(model.dof(), 11);
        g.bench_with_input(BenchmarkId::from_parameter(robot.name()), &model, |b, m| {
            b.iter(|| black_box(mass_matrix(m, black_box(&q))));
        });
    }
    g.finish();
}

fn bench_aba(c: &mut Criterion) {
    let mut g = c.benchmark_group("aba_forward_dynamics");
    for robot in robots_under_test() {
        let model = DynamicsModel::<f64>::new(&robot);
        let (q, qd, tau) = state(model.dof(), 13);
        g.bench_with_input(BenchmarkId::from_parameter(robot.name()), &model, |b, m| {
            b.iter(|| black_box(aba(m, black_box(&q), black_box(&qd), black_box(&tau))));
        });
    }
    g.finish();
}

fn bench_grad_id(c: &mut Criterion) {
    let mut g = c.benchmark_group("grad_inverse_dynamics");
    for robot in robots_under_test() {
        let model = DynamicsModel::<f64>::new(&robot);
        let (q, qd, qdd) = state(model.dof(), 17);
        let cache = rnea(&model, &q, &qd, &qdd).cache;
        g.bench_with_input(BenchmarkId::from_parameter(robot.name()), &model, |b, m| {
            b.iter(|| black_box(rnea_derivatives(m, black_box(&qd), black_box(&cache))));
        });
    }
    g.finish();
}

fn bench_full_gradient_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamics_gradient_kernel");
    for robot in robots_under_test() {
        let model = DynamicsModel::<f64>::new(&robot);
        let input = &robo_baselines::random_inputs(&robot, 1, 19)[0];
        g.bench_with_input(BenchmarkId::from_parameter(robot.name()), &model, |b, m| {
            b.iter(|| {
                black_box(dynamics_gradient_from_qdd(
                    m,
                    black_box(&input.q),
                    black_box(&input.qd),
                    black_box(&input.qdd),
                    black_box(&input.minv),
                ))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_rnea, bench_mass_matrix, bench_aba, bench_grad_id, bench_full_gradient_kernel
}
criterion_main!(benches);
