//! Criterion benches for the extension substrates: forward kinematics,
//! Jacobians, collision checking, generated-netlist evaluation, and the
//! fixed-point MAC modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use robo_collision::{min_clearance, CollisionModel};
use robo_dynamics::{forward_kinematics, geometric_jacobian, DynamicsModel};
use robo_fixed::Fix32_16;
use robo_model::robots;
use robo_spatial::Scalar;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_fk(c: &mut Criterion) {
    let mut g = c.benchmark_group("forward_kinematics");
    for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
        let model = DynamicsModel::<f64>::new(&robot);
        let q = vec![0.3; model.dof()];
        g.bench_with_input(BenchmarkId::from_parameter(robot.name()), &model, |b, m| {
            b.iter(|| black_box(forward_kinematics(m, black_box(&q))));
        });
    }
    g.finish();
}

fn bench_jacobian(c: &mut Criterion) {
    let robot = robots::iiwa14();
    let model = DynamicsModel::<f64>::new(&robot);
    let q = vec![0.3; 7];
    c.bench_function("geometric_jacobian/iiwa_tip", |b| {
        b.iter(|| black_box(geometric_jacobian(&model, black_box(&q), 6)));
    });
}

fn bench_collision(c: &mut Criterion) {
    let mut g = c.benchmark_group("self_collision_check");
    for robot in [robots::iiwa14(), robots::hyq()] {
        let model = DynamicsModel::<f64>::new(&robot);
        let cm = CollisionModel::from_robot(&robot, 0.05);
        let q = vec![0.4; model.dof()];
        g.bench_with_input(BenchmarkId::from_parameter(robot.name()), &model, |b, m| {
            b.iter(|| black_box(min_clearance(m, &cm, black_box(&q))));
        });
    }
    g.finish();
}

fn bench_netlist_eval(c: &mut Criterion) {
    let robot = robots::iiwa14();
    let unit = robo_codegen::generate_x_unit(&robot, 1);
    let mut inputs = HashMap::new();
    inputs.insert("sin_q".to_owned(), 0.6_f64.sin());
    inputs.insert("cos_q".to_owned(), 0.6_f64.cos());
    for i in 0..6 {
        inputs.insert(format!("v{i}"), 0.1 * i as f64 - 0.3);
    }
    c.bench_function("netlist_eval/x_unit_joint1", |b| {
        b.iter(|| black_box(unit.eval::<f64>(black_box(&inputs)).unwrap()));
    });
}

fn bench_mac_modes(c: &mut Criterion) {
    let pairs: Vec<(Fix32_16, Fix32_16)> = (0..6)
        .map(|i| {
            (
                Fix32_16::from_f64(0.3 * i as f64 - 0.7),
                Fix32_16::from_f64(-0.2 * i as f64 + 0.5),
            )
        })
        .collect();
    let mut g = c.benchmark_group("fixed_dot6");
    g.bench_function("per_op", |b| {
        b.iter(|| {
            black_box(
                pairs
                    .iter()
                    .fold(Fix32_16::zero(), |acc, (x, y)| acc + *x * *y),
            )
        });
    });
    g.bench_function("wide_mac", |b| {
        b.iter(|| black_box(Fix32_16::dot_accumulate(black_box(&pairs))));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_fk, bench_jacobian, bench_collision, bench_netlist_eval, bench_mac_modes
}
criterion_main!(benches);
