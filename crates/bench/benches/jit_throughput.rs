//! Copy-and-patch template JIT vs the direct-threaded tape.
//!
//! The threaded tape dispatches every scheduled superinstruction block
//! through one indirect call, and every handler re-loads its operand
//! indices from the `OpArgs` table and re-indexes the register file per
//! instruction. For `f64` tapes the template JIT
//! ([`CompiledNetlist::enable_jit`]) removes all of that: each decoded
//! instruction is lowered **inline** to 2–4 SSE scalar instructions
//! with the operand byte offsets patched into their disp32 fields — a
//! straight-line leaf function with no dispatch, no calls, and no
//! operand-table traffic. The lowering preserves the interpreter's
//! semantics exactly (two rounding steps for fused opcodes, sign-bit
//! negation, all reads before the single store), so the comparison is
//! bit-identical by construction and measures execution overhead
//! alone.
//!
//! Three comparisons, all single-threaded:
//!
//! * `tape_threaded_scalar` vs `tape_jit_scalar` — the compiled iiwa
//!   full-pipeline X tape, per-state scalar evaluation. The speedup key
//!   `jit_vs_threaded` is the PR's acceptance floor (≥ 1.15×) and the
//!   one `ci/bench_baseline_10.json` gates.
//! * `tape_interp_scalar` vs `tape_jit_scalar` — the same tape through
//!   the `match`-dispatch oracle, for the cumulative `jit_vs_interp`
//!   ratio (scheduling + threading + stitching).
//! * `family_threaded_scalar` vs `family_jit_scalar` — the fused
//!   RNEA/FD/∇ID multifunction family tape, the largest tape the
//!   serving path JIT-enables (`RobotPlan::with_tier(.., Jit)`).
//!
//! Results (median ns per state), the speedup ratios, and the host
//! provenance block go to `BENCH_10.json` at the repository root
//! (override with `BENCH_OUT`). `BENCH_QUICK=1` shrinks the run for CI
//! and `BENCH_TRIALS=N` repeats it for the confidence-interval gate;
//! see [`robo_bench::harness`].
//!
//! On hosts without the JIT (non-x86-64, non-Linux) the JIT-enabled
//! tape transparently runs threaded; the bench prints a warning and the
//! ratios degrade to ~1.0 — the gate only runs on the x86-64 CI runner.

use robo_bench::harness::{self, tape_states, time_median_ns_interleaved, BenchEnv};
use robo_bench::report::{speedup, BenchReport, HostInfo};
use robo_codegen::{generate_kernel_family, generate_x_pipeline, optimize, CompiledNetlist};
use robo_dynamics::engine::KernelKind;
use robo_model::robots;
use robo_sparsity::superposition_pattern;
use std::hint::black_box;

/// A per-state scalar sweep of `tape` over `states` as a timing closure
/// (each alternative owns its register file so the sweeps interleave).
fn scalar_sweep<'a>(
    tape: &'a CompiledNetlist<f64>,
    states: &'a [Vec<f64>],
    interp: bool,
) -> impl FnMut() + 'a {
    let mut regs = vec![0.0_f64; tape.num_regs()];
    let mut out = vec![0.0_f64; tape.num_outputs()];
    move || {
        for s in states {
            if interp {
                tape.eval_into_regs_interp(s, &mut regs, &mut out);
            } else {
                tape.eval_into_regs(s, &mut regs, &mut out);
            }
            black_box(&out);
        }
    }
}

fn run_once(env: &BenchEnv) -> BenchReport {
    let mut report = BenchReport::new();
    report.set_host(HostInfo::detect());

    let robot = robots::iiwa14();
    let sup = superposition_pattern(&robot);

    // The iiwa full-pipeline tape, threaded and JIT-stitched.
    let tape = CompiledNetlist::<f64>::compile(&optimize(&generate_x_pipeline(&robot, sup)));
    let mut jit_tape = tape.clone();
    if !jit_tape.enable_jit() {
        println!(
            "jit_throughput: WARNING: JIT unavailable on this host — \
             measuring the threaded fallback"
        );
    }
    let states = tape_states(env.tape_batch, tape.input_names().len());

    // The fused multifunction family tape — the one the serving path
    // JIT-enables.
    let (family_netlist, _, _) = generate_kernel_family(&robot, sup, &KernelKind::ALL)
        .expect("distinct kernels never collide on output names");
    let family = CompiledNetlist::<f64>::compile(&family_netlist);
    let mut family_jit = family.clone();
    family_jit.enable_jit();
    let family_states = tape_states(env.tape_batch, family.input_names().len());

    // Interleaved A/B/C sweeps: dispatch differences on these tapes are
    // tens of ns/state, so back-to-back whole-path runs on a shared
    // 1-core runner would let machine drift masquerade as a speedup (or
    // eat a real one). Round-robin reps bias every path equally.
    let medians = time_median_ns_interleaved(
        env.reps,
        env.tape_batch,
        &mut [
            &mut scalar_sweep(&tape, &states, true),
            &mut scalar_sweep(&tape, &states, false),
            &mut scalar_sweep(&jit_tape, &states, false),
        ],
    );
    let (tape_interp, tape_threaded, tape_jit) = (medians[0], medians[1], medians[2]);
    let medians = time_median_ns_interleaved(
        env.reps,
        env.tape_batch,
        &mut [
            &mut scalar_sweep(&family, &family_states, false),
            &mut scalar_sweep(&family_jit, &family_states, false),
        ],
    );
    let (family_threaded, family_jit_ns) = (medians[0], medians[1]);

    report.record_median_ns("tape_interp_scalar", tape_interp);
    report.record_median_ns("tape_threaded_scalar", tape_threaded);
    report.record_median_ns("tape_jit_scalar", tape_jit);
    report.record_median_ns("family_threaded_scalar", family_threaded);
    report.record_median_ns("family_jit_scalar", family_jit_ns);
    report.record_speedup("jit_vs_threaded", tape_threaded / tape_jit);
    report.record_speedup("jit_vs_interp", tape_interp / tape_jit);
    report.record_speedup("family_jit_vs_threaded", family_threaded / family_jit_ns);

    match jit_tape.jit_report() {
        Some(r) => println!(
            "jit_throughput: pipeline tape stitched: {} blocks, {} code bytes, {} patches",
            r.blocks, r.code_bytes, r.patches
        ),
        None => println!("jit_throughput: pipeline tape runs threaded (no JIT)"),
    }
    for (name, ns) in [
        ("tape_interp_scalar", tape_interp),
        ("tape_threaded_scalar", tape_threaded),
        ("tape_jit_scalar", tape_jit),
        ("family_threaded_scalar", family_threaded),
        ("family_jit_scalar", family_jit_ns),
    ] {
        println!("jit_throughput/{name:<24} median: {ns:10.1} ns/state");
    }
    for name in ["jit_vs_threaded", "jit_vs_interp", "family_jit_vs_threaded"] {
        let ratio = report.speedup_of(name).expect("just recorded");
        println!("jit_throughput/{name:<24} speedup: {}", speedup(ratio));
    }
    report
}

fn main() {
    let default = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_10.json");
    harness::run_trials(&default, run_once);
}
