//! Multifunction kernel family: the fused shared-subexpression tape
//! against three dedicated single-kernel tapes, on the same workload.
//!
//! The tentpole claim of the kernel-family refactor is that emitting
//! RNEA, forward dynamics, and the ∇ID gradient stage into **one**
//! netlist lets the optimizer share the trig inputs, the X/Xᵀ banks, and
//! every common subexpression across kernels — the Dadu-RBD-style
//! multifunction-datapath argument, realized here at the compiled-tape
//! level. Two measurements pin it down:
//!
//! * **Family evaluation throughput** — one full family evaluation (all
//!   three kernels' outputs) through the fused tape vs the same outputs
//!   through three dedicated tapes, serial `eval_into` on warm
//!   workspaces. Medians are recorded as `multikernel_fused_family_ns` /
//!   `multikernel_dedicated_family_ns`, with the ratio gated as the
//!   speedup `multikernel_fused_vs_dedicated_iiwa14` (≥ 1 means fusion
//!   pays: the shared nodes are evaluated once instead of per kernel).
//! * **Circuit sharing ratio** — `SharingReport`'s dedicated/merged node
//!   ratio, recorded as `multikernel_sharing_ratio_iiwa14`. This is a
//!   deterministic codegen property (no timing noise); the gate pins it
//!   so a regression in CSE across kernels fails CI even if the host is
//!   fast enough to hide it.
//!
//! Results are written to `BENCH_9.json` at the repository root
//! (override with `BENCH_OUT`). `BENCH_QUICK=1` shrinks the iteration
//! counts for CI and `BENCH_TRIALS=N` repeats the run for the
//! confidence-interval gate; see [`robo_bench::harness`].

use robo_bench::harness::{self, BenchEnv};
use robo_bench::report::{median, speedup, BenchReport, HostInfo};
use robo_codegen::{
    generate_kernel_family, generate_kernel_netlist, optimize, CompiledNetlist, EvalWorkspace,
};
use robo_dynamics::engine::KernelKind;
use robo_model::robots;
use std::time::Instant;

/// A deterministic input value for a fused-netlist slot: every tape
/// (fused or dedicated) reads the same value for the same fused name, so
/// the workloads are identical.
fn input_value(name: &str) -> f64 {
    let h = name
        .bytes()
        .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
    ((h % 1024) as f64 / 512.0 - 1.0) * 0.9
}

/// A compiled tape plus the warm buffers to drive it allocation-free.
struct Bank {
    tape: CompiledNetlist<f64>,
    ws: EvalWorkspace<f64>,
    inputs: Vec<f64>,
    outputs: Vec<f64>,
}

impl Bank {
    fn new(tape: CompiledNetlist<f64>) -> Self {
        let inputs: Vec<f64> = tape.input_names().iter().map(|n| input_value(n)).collect();
        let ws = EvalWorkspace::for_netlist(&tape);
        let outputs = vec![0.0; tape.num_outputs()];
        Self {
            tape,
            ws,
            inputs,
            outputs,
        }
    }

    fn eval(&mut self) {
        self.tape
            .eval_into(&self.inputs, &mut self.ws, &mut self.outputs);
    }
}

/// Median ns for one full family evaluation over `iters` iterations,
/// `runs` runs.
fn family_ns(banks: &mut [Bank], iters: usize, runs: usize) -> f64 {
    // Warm-up: page in the tapes, touch every buffer.
    for bank in banks.iter_mut() {
        bank.eval();
    }
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                for bank in banks.iter_mut() {
                    bank.eval();
                }
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    median(&mut samples)
}

fn run_once(env: &BenchEnv) -> BenchReport {
    let mut report = BenchReport::new();
    report.set_host(HostInfo::detect());

    let robot = robots::iiwa14();
    let mask = robo_sparsity::superposition_pattern(&robot);
    let (merged, _, sharing) = generate_kernel_family(&robot, mask, &KernelKind::ALL)
        .expect("distinct kernels never collide on output names");
    let mut fused = vec![Bank::new(CompiledNetlist::compile(&merged))];
    let mut dedicated: Vec<Bank> = KernelKind::ALL
        .iter()
        .map(|&k| {
            let net = generate_kernel_netlist(&robot, mask, &[k]).expect("single kernel");
            Bank::new(CompiledNetlist::compile(&optimize(&net)))
        })
        .collect();

    let (iters, runs) = if env.quick { (2_000, 3) } else { (20_000, 7) };
    let fused_ns = family_ns(&mut fused, iters, runs);
    let dedicated_ns = family_ns(&mut dedicated, iters, runs);
    report.record_median_ns("multikernel_fused_family_ns", fused_ns);
    report.record_median_ns("multikernel_dedicated_family_ns", dedicated_ns);
    report.record_speedup(
        "multikernel_fused_vs_dedicated_iiwa14",
        dedicated_ns / fused_ns,
    );

    let sharing_ratio = sharing.dedicated_nodes() as f64 / sharing.merged_nodes.max(1) as f64;
    report.record_speedup("multikernel_sharing_ratio_iiwa14", sharing_ratio);

    println!(
        "multikernel/fused_family      median: {fused_ns:10.1} ns/family \
         ({} nodes, {} DSP muls)",
        sharing.merged_nodes, sharing.merged.muls
    );
    println!(
        "multikernel/dedicated_family  median: {dedicated_ns:10.1} ns/family \
         ({} nodes, {} DSP muls across 3 tapes)",
        sharing.dedicated_nodes(),
        sharing.dedicated_stats().muls
    );
    println!(
        "multikernel/fused_vs_dedicated_iiwa14 speedup: {}",
        speedup(dedicated_ns / fused_ns)
    );
    println!(
        "multikernel/sharing_ratio_iiwa14      ratio: {} \
         ({} shared nodes, {} shared DSP muls, {} shared adds)",
        speedup(sharing_ratio),
        sharing.shared_nodes(),
        sharing.shared_dsp_muls(),
        sharing.shared_adds()
    );
    report
}

fn main() {
    let default = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_9.json");
    harness::run_trials(&default, run_once);
}
