//! Tiered-execution throughput: native SIMD lanes vs the portable
//! `Lanes<f64, 4>` fallback, and the direct-threaded tape vs the `match`
//! interpreter.
//!
//! Three comparisons, each single-threaded and bit-identical by
//! construction (so they are pure throughput measurements):
//!
//! * `tape_interp_scalar` vs `tape_threaded_scalar` — the compiled
//!   full-pipeline X tape (every joint's unit merged, the per-state
//!   transform work of a whole forward sweep) evaluated per state through
//!   the legacy `match` interpreter (`eval_into_regs_interp`, kept as the
//!   correctness oracle) vs the direct-threaded superinstruction tape
//!   that now backs `eval_into`;
//! * `tape_portable4` vs `tape_native` — one SoA batch sweep through the
//!   portable `Lanes<f64, 4>` workspace vs the tier-dispatched workspace
//!   (`tiered_workspace(ExecTier::detect())` — AVX2 `F64x4`, SSE2/NEON
//!   `F64x2`, or the same portable lanes when the host has nothing
//!   better);
//! * `cpu_grad_portable4` vs `cpu_grad_native` — the full
//!   dynamics-gradient kernel through [`CpuAnalytic`] built at
//!   `ExecTier::Portable` vs the host-detected tier.
//!
//! The acceptance floor for this PR is `tape_native` ≥ 1.3× the portable
//! `Lanes<4>` path on hosts with a native tier, and the threaded tape
//! beating the interpreter at scalar width. Results (median ns per
//! state), the speedup ratios, and the host provenance block are written
//! to `BENCH_6.json` at the repository root (override with `BENCH_OUT`;
//! CI's traced re-run writes `BENCH_6.traced.json`) — the CI artifact
//! gated by `analyse`/`bench_guard`. `BENCH_QUICK=1` shrinks the run for
//! CI and `BENCH_TRIALS=N` repeats it for the confidence-interval gate;
//! see [`robo_bench::harness`].

use robo_bench::harness::{self, tape_states, time_median_ns, BenchEnv};
use robo_bench::report::{speedup, BenchReport, HostInfo};
use robo_codegen::{generate_x_pipeline, optimize, BatchEvalWorkspace, CompiledNetlist};
use robo_dynamics::batch::GradientState;
use robo_dynamics::engine::{CpuAnalytic, GradientBackend, GradientBatchOutput};
use robo_dynamics::DynamicsModel;
use robo_model::robots;
use robo_sparsity::superposition_pattern;
use robo_spatial::{ExecTier, Lanes};
use std::hint::black_box;

fn run_once(env: &BenchEnv) -> BenchReport {
    let tier = ExecTier::detect();
    let mut report = BenchReport::new();
    report.set_host(HostInfo::detect());

    let robot = robots::iiwa14();
    let sup = superposition_pattern(&robot);
    let tape = CompiledNetlist::<f64>::compile(&optimize(&generate_x_pipeline(&robot, sup)));
    let n_out = tape.num_outputs();
    let states = tape_states(env.tape_batch, tape.input_names().len());
    let state_refs: Vec<&[f64]> = states.iter().map(|s| s.as_slice()).collect();

    // --- Threaded tape vs match interpreter, scalar width ---------------
    let mut regs = vec![0.0_f64; tape.num_regs()];
    let mut out_one = vec![0.0_f64; n_out];
    let tape_interp = time_median_ns(env.reps, env.tape_batch, || {
        for s in &states {
            tape.eval_into_regs_interp(s, &mut regs, &mut out_one);
            black_box(&out_one);
        }
    });
    let tape_threaded = time_median_ns(env.reps, env.tape_batch, || {
        for s in &states {
            tape.eval_into_regs(s, &mut regs, &mut out_one);
            black_box(&out_one);
        }
    });

    // --- Portable Lanes<4> vs native-tier SoA sweep ----------------------
    let mut portable_ws = BatchEvalWorkspace::<Lanes<f64, 4>>::for_netlist(&tape);
    let mut out_flat = vec![0.0_f64; env.tape_batch * n_out];
    let tape_portable = time_median_ns(env.reps, env.tape_batch, || {
        tape.eval_batch_into(&states, &mut portable_ws, &mut out_flat);
        black_box(&out_flat);
    });
    let mut tiered_ws = tape.tiered_workspace(tier);
    let lane_name = tiered_ws.lane_name();
    let tape_native = time_median_ns(env.reps, env.tape_batch, || {
        tiered_ws.eval_batch_into(&tape, &state_refs, &mut out_flat);
        black_box(&out_flat);
    });

    // --- Full gradient kernel: portable tier vs native tier -------------
    let model = std::sync::Arc::new(DynamicsModel::<f64>::new(&robot));
    let cases = harness::gradient_cases(&model, env.grad_batch);
    let grad_states: Vec<GradientState<'_, f64>> = cases
        .iter()
        .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
        .collect();

    let mut cpu_portable = CpuAnalytic::<f64>::with_model_tier(model.clone(), ExecTier::Portable);
    let mut cpu_native = CpuAnalytic::<f64>::with_model_tier(model.clone(), tier);
    let mut batch_out = GradientBatchOutput::new();
    let grad_portable = time_median_ns(env.grad_reps, env.grad_batch, || {
        cpu_portable
            .gradient_batch_into(&grad_states, &mut batch_out)
            .expect("dimensions match");
        black_box(&batch_out);
    });
    let grad_native = time_median_ns(env.grad_reps, env.grad_batch, || {
        cpu_native
            .gradient_batch_into(&grad_states, &mut batch_out)
            .expect("dimensions match");
        black_box(&batch_out);
    });

    report.record_median_ns("tape_interp_scalar", tape_interp);
    report.record_median_ns("tape_threaded_scalar", tape_threaded);
    report.record_median_ns("tape_portable4", tape_portable);
    report.record_median_ns("tape_native", tape_native);
    report.record_median_ns("cpu_grad_portable4", grad_portable);
    report.record_median_ns("cpu_grad_native", grad_native);
    report.record_speedup("threaded_vs_interp", tape_interp / tape_threaded);
    report.record_speedup("native_vs_portable4", tape_portable / tape_native);
    report.record_speedup("cpu_native_vs_portable", grad_portable / grad_native);

    println!("tier_throughput: host tier {tier}, native lane type {lane_name}");
    for (name, ns) in [
        ("tape_interp_scalar", tape_interp),
        ("tape_threaded_scalar", tape_threaded),
        ("tape_portable4", tape_portable),
        ("tape_native", tape_native),
        ("cpu_grad_portable4", grad_portable),
        ("cpu_grad_native", grad_native),
    ] {
        println!("tier_throughput/{name:<22} median: {ns:10.1} ns/state");
    }
    for name in [
        "threaded_vs_interp",
        "native_vs_portable4",
        "cpu_native_vs_portable",
    ] {
        let ratio = report.speedup_of(name).expect("just recorded");
        println!("tier_throughput/{name:<22} speedup: {}", speedup(ratio));
    }
    report
}

fn main() {
    let default = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_6.json");
    harness::run_trials(&default, run_once);
}
