//! Figure 13's measured column: multi-time-step gradient batches on the
//! CPU (thread pool), and the cost of evaluating the coprocessor and GPU
//! latency models (reported for transparency — the models themselves are
//! closed-form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use robo_baselines::{random_inputs, CpuBaseline, GpuModel};
use robo_model::robots;
use robo_sim::CoprocessorSystem;
use robomorphic_core::GradientTemplate;
use std::hint::black_box;
use std::sync::Arc;

fn bench_cpu_batches(c: &mut Criterion) {
    let robot = robots::iiwa14();
    let cpu = CpuBaseline::new(&robot);
    let mut g = c.benchmark_group("fig13_cpu_batch");
    for steps in [10usize, 32, 128] {
        let inputs = Arc::new(random_inputs(&robot, steps, steps as u64));
        g.throughput(Throughput::Elements(steps as u64));
        g.bench_with_input(BenchmarkId::from_parameter(steps), &inputs, |b, inputs| {
            b.iter(|| black_box(cpu.compute_batch(Arc::clone(inputs))));
        });
    }
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let coproc =
        CoprocessorSystem::fpga_default(GradientTemplate::new().customize(&robots::iiwa14()));
    let gpu = GpuModel::rtx2080();
    let mut g = c.benchmark_group("fig13_models");
    g.bench_function("fpga_roundtrip_eval", |b| {
        b.iter(|| black_box(coproc.round_trip(black_box(128))));
    });
    g.bench_function("gpu_model_eval", |b| {
        b.iter(|| black_box(gpu.batch_latency_s(7, black_box(128))));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_cpu_batches, bench_models
}
criterion_main!(benches);
