//! The engine layer's backends compared on identical per-call gradient
//! workloads, all through the `GradientBackend` trait — the backend
//! selection data behind README's Performance notes.
//!
//! `cpu` measures the analytical workspace kernels, `accel` the *software
//! simulation cost* of the compiled-netlist accelerator path (its modeled
//! hardware latency is a static cycle count, not this number), and `fd`
//! the finite-difference oracle. `trait_batch` drives the shared
//! `BatchEngine` through the trait's batch entry point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use robo_baselines::{random_inputs, GradientInput};
use robo_dynamics::batch::GradientState;
use robo_dynamics::engine::{GradientBackend, GradientOutput};
use robo_model::robots;
use robo_sim::{BackendKind, RobotPlan};
use std::hint::black_box;

fn states_of(inputs: &[GradientInput]) -> Vec<GradientState<'_, f64>> {
    inputs
        .iter()
        .map(|inp| GradientState {
            q: &inp.q,
            qd: &inp.qd,
            qdd: &inp.qdd,
            minv: &inp.minv,
        })
        .collect()
}

fn bench_single_call(c: &mut Criterion) {
    let robot = robots::iiwa14();
    let plan = RobotPlan::new(&robot);
    let input = &random_inputs(&robot, 1, 0xB0A)[0];

    let mut g = c.benchmark_group("engine_backends");
    for kind in BackendKind::ALL {
        let mut backend = plan.backend(kind);
        let mut out = GradientOutput::for_dof(plan.dof());
        g.bench_function(kind.as_str(), |b| {
            b.iter(|| {
                backend
                    .gradient_into(&input.q, &input.qd, &input.qdd, &input.minv, &mut out)
                    .expect("input matches plan");
                black_box(&out.dqdd_dq);
            });
        });
    }
    g.finish();
}

fn bench_trait_batch(c: &mut Criterion) {
    let robot = robots::iiwa14();
    let plan = RobotPlan::new(&robot);

    let mut g = c.benchmark_group("engine_backends_batch");
    for steps in [32usize, 128] {
        let inputs = random_inputs(&robot, steps, steps as u64);
        let states = states_of(&inputs);
        g.throughput(Throughput::Elements(steps as u64));
        let backend = plan.cpu_backend();
        g.bench_with_input(
            BenchmarkId::new("cpu_trait_batch", steps),
            &states,
            |b, states| {
                b.iter(|| black_box(backend.gradient_batch(states).expect("inputs match plan")));
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_single_call, bench_trait_batch
}
criterion_main!(benches);
