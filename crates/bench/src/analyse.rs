//! Statistics for the perf-study harness: per-key medians with bootstrap
//! confidence intervals over N trials, report tables (text + markdown),
//! and the CI-aware regression gate that subsumes `bench_guard`'s fixed
//! tolerance band.
//!
//! Two input kinds feed the `analyse` binary:
//!
//! * [`BenchReport`] JSON artifacts (`BENCH_*.json`, one per trial) — the
//!   per-bench medians and machine-relative speedup ratios;
//! * Chrome-trace JSON files written by `robo-trace` — every span
//!   instance becomes a duration sample for its span kind.
//!
//! The gate compares speedup ratios (and, on request, medians — only
//! meaningful same-machine) against a baseline report. With at least
//! [`GateConfig::DEFAULT_MIN_TRIALS`] samples per key it uses an
//! overlapping-interval rule: the key regresses only when its whole
//! bootstrap confidence interval falls below the baseline (with a small
//! [`GateConfig::ci_slack`] for day-to-day machine drift). With fewer
//! samples it falls back to the single-sample
//! [`GuardConfig`] tolerance band
//! (default 30%) — wide because a lone sample carries no spread
//! information. The 1.0 "the optimized path must stay a win" floor from
//! `bench_guard` gates in both modes.

use crate::regression::GuardConfig;
use crate::report::{is_latency_key, latency_stem, median, BenchReport, Table};
use crate::report::{LATENCY_P50_SUFFIX, LATENCY_P99_SUFFIX};
use robo_trace::Trace;

/// Summary of one sample set: the median and a bootstrap percentile
/// confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample count.
    pub n: usize,
    /// Sample median.
    pub median: f64,
    /// Lower edge of the 95% bootstrap CI (equals the median for n = 1).
    pub lo: f64,
    /// Upper edge of the 95% bootstrap CI.
    pub hi: f64,
}

/// Bootstrap resamples drawn per CI. 200 keeps the percentile edges
/// stable to well under the jitter the gate tolerates.
const BOOTSTRAP_RESAMPLES: usize = 200;

/// SplitMix64: a tiny deterministic generator (fixed seed, so analyse
/// output is reproducible run to run — the workspace has no rand crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Stats {
    /// Computes the median and a 95% bootstrap percentile CI of the
    /// medians of `BOOTSTRAP_RESAMPLES` (200) resamples.
    ///
    /// A single sample gets a degenerate interval (`lo == hi == median`):
    /// one observation carries no spread information, which is exactly
    /// why the gate falls back to the tolerance band there.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "stats of no samples");
        let mut sorted = samples.to_vec();
        let med = median(&mut sorted);
        if samples.len() == 1 {
            return Self {
                n: 1,
                median: med,
                lo: med,
                hi: med,
            };
        }
        let mut rng = 0x5EED_BEEF_CAFE_F00D_u64;
        let mut meds = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
        let mut resample = vec![0.0; samples.len()];
        for _ in 0..BOOTSTRAP_RESAMPLES {
            for slot in resample.iter_mut() {
                *slot = samples[(splitmix64(&mut rng) % samples.len() as u64) as usize];
            }
            meds.push(median(&mut resample));
        }
        meds.sort_by(|a, b| a.partial_cmp(b).expect("comparable samples"));
        // 95% percentile interval: the 2.5th and 97.5th percentiles.
        let lo = meds[(BOOTSTRAP_RESAMPLES as f64 * 0.025) as usize];
        let hi = meds[((BOOTSTRAP_RESAMPLES as f64 * 0.975) as usize).min(meds.len() - 1)];
        Self {
            n: samples.len(),
            median: med,
            lo,
            hi,
        }
    }

    fn interval(&self) -> String {
        if self.n == 1 {
            "—".to_owned()
        } else {
            format!("[{:.3}, {:.3}]", self.lo, self.hi)
        }
    }
}

/// Per-key sample sets accumulated across trial files.
#[derive(Debug, Clone, Default)]
pub struct KeyedSamples {
    entries: Vec<(String, Vec<f64>)>,
}

impl KeyedSamples {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one observation for `key` (insertion order of first
    /// appearance is preserved).
    pub fn push(&mut self, key: &str, value: f64) {
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => v.push(value),
            None => self.entries.push((key.to_owned(), vec![value])),
        }
    }

    /// The samples recorded for `key`.
    pub fn get(&self, key: &str) -> Option<&[f64]> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }

    /// All keys with their [`Stats`], in first-appearance order.
    pub fn stats(&self) -> Vec<(String, Stats)> {
        self.entries
            .iter()
            .map(|(k, v)| (k.clone(), Stats::from_samples(v)))
            .collect()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Splits N trial reports into per-key median and speedup sample sets.
pub fn bench_samples(trials: &[BenchReport]) -> (KeyedSamples, KeyedSamples) {
    let mut medians = KeyedSamples::new();
    let mut speedups = KeyedSamples::new();
    for r in trials {
        for (k, v) in r.medians() {
            medians.push(k, *v);
        }
        for (k, v) in r.speedups() {
            speedups.push(k, *v);
        }
    }
    (medians, speedups)
}

/// Flattens traces into per-span-kind duration samples (µs): every span
/// instance across every file is one sample.
pub fn trace_samples(traces: &[Trace]) -> KeyedSamples {
    let mut out = KeyedSamples::new();
    for t in traces {
        for (name, durs) in t.durations_us_by_name() {
            for d in durs {
                out.push(&name, d);
            }
        }
    }
    out
}

/// Gate policy: how current trials compare against the committed
/// baseline.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Single-sample fallback band (and the 1.0 floor rule), identical to
    /// `bench_guard`'s policy.
    pub band: GuardConfig,
    /// Relative slack under the baseline the whole CI must clear before a
    /// key counts as regressed (machine drift allowance). Much tighter
    /// than the 30% band — the spread information is in the interval.
    pub ci_slack: f64,
    /// Minimum samples per key before the interval rule applies.
    pub min_trials: usize,
}

impl GateConfig {
    /// Default CI slack: 10%.
    pub const DEFAULT_CI_SLACK: f64 = 0.10;

    /// Default trials needed for the interval rule (the CI bench jobs run
    /// exactly this many).
    pub const DEFAULT_MIN_TRIALS: usize = 3;
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            band: GuardConfig::default(),
            ci_slack: Self::DEFAULT_CI_SLACK,
            min_trials: Self::DEFAULT_MIN_TRIALS,
        }
    }
}

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Speedup ratios: bigger is better, regressions fall below baseline.
    HigherIsBetter,
    /// Median times: smaller is better, regressions rise above baseline.
    LowerIsBetter,
}

fn gate_key(
    name: &str,
    base: f64,
    samples: &[f64],
    direction: Direction,
    config: GateConfig,
    failures: &mut Vec<String>,
) {
    let stats = Stats::from_samples(samples);
    let ci_mode = samples.len() >= config.min_trials;
    let (tol, probe) = if ci_mode {
        // Overlapping-interval rule: only regressed when the *entire*
        // CI clears the baseline in the bad direction.
        let probe = match direction {
            Direction::HigherIsBetter => stats.hi,
            Direction::LowerIsBetter => stats.lo,
        };
        (config.ci_slack, probe)
    } else {
        (config.band.speedup_tolerance, stats.median)
    };
    let mode = if ci_mode {
        format!("95% CI {} of {} trials", stats.interval(), stats.n)
    } else {
        format!("{} trial(s), {:.0}% band", stats.n, tol * 100.0)
    };
    match direction {
        Direction::HigherIsBetter => {
            let allowed = base * (1.0 - tol);
            if probe < allowed {
                failures.push(format!(
                    "speedup `{name}` regressed: median {:.3}x vs baseline {base:.3}x \
                     (allowed ≥ {allowed:.3}x; {mode})",
                    stats.median
                ));
            } else if base >= config.band.speedup_floor && stats.median < config.band.speedup_floor
            {
                failures.push(format!(
                    "speedup `{name}` fell below the floor: median {:.3}x < {:.3}x \
                     (baseline {base:.3}x was a win; the optimized path lost to its fallback)",
                    stats.median, config.band.speedup_floor
                ));
            }
        }
        Direction::LowerIsBetter => {
            let allowed = base * (1.0 + tol);
            if probe > allowed {
                failures.push(format!(
                    "median `{name}` regressed: {:.1} ns vs baseline {base:.1} ns \
                     (allowed ≤ {allowed:.1} ns; {mode})",
                    stats.median
                ));
            }
        }
    }
}

/// Gates current trial speedups against the baseline report's ratios.
///
/// Only keys present in both the baseline and at least one trial gate —
/// adding or renaming benches never trips the gate. Zero-valued baseline
/// entries are skipped (a zero-time span yields meaningless ratios).
pub fn gate_speedups(
    baseline: &BenchReport,
    trials: &[BenchReport],
    config: GateConfig,
) -> Vec<String> {
    let (_, speedups) = bench_samples(trials);
    let mut failures = Vec::new();
    for (name, base) in baseline.speedups() {
        if *base == 0.0 {
            continue;
        }
        if let Some(samples) = speedups.get(name) {
            gate_key(
                name,
                *base,
                samples,
                Direction::HigherIsBetter,
                config,
                &mut failures,
            );
        }
    }
    failures
}

/// Gates current trial medians (nanoseconds, lower is better) against the
/// baseline report's medians.
///
/// Medians are machine-specific, so this is only meaningful when both
/// sides ran on the same machine — the disabled-vs-absent tracing delta
/// in CI, where baseline and current come from the same job. Zero-valued
/// baseline medians are skipped.
pub fn gate_medians(
    baseline: &BenchReport,
    trials: &[BenchReport],
    config: GateConfig,
) -> Vec<String> {
    let (medians, _) = bench_samples(trials);
    let mut failures = Vec::new();
    for (name, base) in baseline.medians() {
        if *base == 0.0 {
            continue;
        }
        if let Some(samples) = medians.get(name) {
            gate_key(
                name,
                *base,
                samples,
                Direction::LowerIsBetter,
                config,
                &mut failures,
            );
        }
    }
    failures
}

/// Renders the per-key median/CI table for N bench trial reports.
/// Latency percentiles (`*_p50_ns`/`*_p99_ns`) are left to
/// [`latency_table`], which pairs them into columns.
pub fn bench_table(trials: &[BenchReport], title: &str) -> Table {
    let (medians, speedups) = bench_samples(trials);
    let mut t = Table::new(title).headers(["metric", "key", "trials", "median", "95% CI"]);
    for (name, s) in medians.stats() {
        if is_latency_key(&name) {
            continue;
        }
        t.row([
            "median_ns".to_owned(),
            name,
            s.n.to_string(),
            format!("{:.1}", s.median),
            s.interval(),
        ]);
    }
    for (name, s) in speedups.stats() {
        t.row([
            "speedup".to_owned(),
            name,
            s.n.to_string(),
            format!("{:.3}x", s.median),
            s.interval(),
        ]);
    }
    t.note(format!("{} trial file(s)", trials.len()));
    t
}

/// Renders the p50/p99 latency table for N bench trial reports: every
/// sweep point that recorded `<stem>_p50_ns` / `<stem>_p99_ns` medians
/// becomes one row with both percentiles (in µs) and their bootstrap CIs
/// side by side. Returns `None` when no trial carries latency keys.
pub fn latency_table(trials: &[BenchReport], title: &str) -> Option<Table> {
    let (medians, _) = bench_samples(trials);
    let mut stems: Vec<String> = Vec::new();
    for (name, _) in medians.stats() {
        if let Some(stem) = latency_stem(&name) {
            if !stems.iter().any(|s| s == stem) {
                stems.push(stem.to_owned());
            }
        }
    }
    if stems.is_empty() {
        return None;
    }
    let us = |ns: f64| format!("{:.1}", ns / 1e3);
    let mut t = Table::new(title).headers([
        "sweep point",
        "trials",
        "p50 µs",
        "p50 95% CI",
        "p99 µs",
        "p99 95% CI",
    ]);
    for stem in stems {
        let p50 = medians
            .get(&format!("{stem}{LATENCY_P50_SUFFIX}"))
            .map(Stats::from_samples);
        let p99 = medians
            .get(&format!("{stem}{LATENCY_P99_SUFFIX}"))
            .map(Stats::from_samples);
        let trials_cell = p50
            .or(p99)
            .map_or_else(|| "0".to_owned(), |s| s.n.to_string());
        let cell = |s: Option<Stats>| match s {
            Some(s) if s.n > 1 => (us(s.median), format!("[{}, {}]", us(s.lo), us(s.hi))),
            Some(s) => (us(s.median), "—".to_owned()),
            None => ("—".to_owned(), "—".to_owned()),
        };
        let (p50_med, p50_ci) = cell(p50);
        let (p99_med, p99_ci) = cell(p99);
        t.row([stem, trials_cell, p50_med, p50_ci, p99_med, p99_ci]);
    }
    t.note("per-request latency percentiles from the serving load generator; lower is better");
    Some(t)
}

/// Renders the per-span-kind table for N trace files: instance count,
/// total wall time, and the median/CI of individual span durations.
pub fn trace_table(traces: &[Trace], title: &str) -> Table {
    let samples = trace_samples(traces);
    let mut t = Table::new(title).headers(["span", "count", "total µs", "median µs", "95% CI"]);
    for (name, durs) in samples.entries.iter() {
        let s = Stats::from_samples(durs);
        let total: f64 = durs.iter().sum();
        t.row([
            name.clone(),
            durs.len().to_string(),
            format!("{total:.1}"),
            format!("{:.3}", s.median),
            s.interval(),
        ]);
    }
    t.note(format!("{} trace file(s)", traces.len()));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_trace::SpanEvent;

    fn report(medians: &[(&str, f64)], speedups: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new();
        for (k, v) in medians {
            r.record_median_ns(*k, *v);
        }
        for (k, v) in speedups {
            r.record_speedup(*k, *v);
        }
        r
    }

    #[test]
    fn stats_on_known_distributions() {
        // Constant data: zero spread, degenerate CI.
        let s = Stats::from_samples(&[5.0, 5.0, 5.0, 5.0, 5.0]);
        assert_eq!((s.median, s.lo, s.hi), (5.0, 5.0, 5.0));
        // A symmetric set: the median is exact, the CI brackets it and
        // stays inside the sample range.
        let s = Stats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.median, 3.0);
        assert!(s.lo >= 1.0 && s.lo <= s.median);
        assert!(s.hi <= 5.0 && s.hi >= s.median);
        // Single sample: median, degenerate interval, n = 1.
        let s = Stats::from_samples(&[7.5]);
        assert_eq!((s.n, s.lo, s.hi), (1, 7.5, 7.5));
        // Zero-time spans are legal samples.
        let s = Stats::from_samples(&[0.0, 0.0, 0.0]);
        assert_eq!((s.median, s.lo, s.hi), (0.0, 0.0, 0.0));
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let data = [3.0, 1.0, 4.0, 1.5, 9.2, 2.6];
        assert_eq!(Stats::from_samples(&data), Stats::from_samples(&data));
    }

    #[test]
    fn gate_passes_matching_trials_and_fails_injected_slowdown() {
        let base = report(&[], &[("wide_vs_scalar", 2.0)]);
        let good: Vec<BenchReport> = (0..3)
            .map(|i| report(&[], &[("wide_vs_scalar", 1.95 + 0.05 * i as f64)]))
            .collect();
        assert!(gate_speedups(&base, &good, GateConfig::default()).is_empty());

        // The injected slowdown this PR must demonstrate: every trial's
        // ratio collapses, the whole CI sits far below baseline → exit 1.
        let slow: Vec<BenchReport> = (0..3)
            .map(|i| report(&[], &[("wide_vs_scalar", 0.9 + 0.01 * i as f64)]))
            .collect();
        let failures = gate_speedups(&base, &slow, GateConfig::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("wide_vs_scalar"));
        assert!(failures[0].contains("regressed"));
    }

    #[test]
    fn interval_rule_tolerates_one_noisy_trial() {
        // Median dip below the old 30% band edge, but one good trial keeps
        // the CI overlapping the baseline: the interval rule passes where
        // a single-sample band check on the worst trial would fail.
        let base = report(&[], &[("wide_vs_scalar", 2.0)]);
        let noisy = [1.2, 1.3, 2.1].map(|v| report(&[], &[("wide_vs_scalar", v)]));
        assert!(gate_speedups(&base, &noisy, GateConfig::default()).is_empty());
    }

    #[test]
    fn single_trial_falls_back_to_the_band() {
        let base = report(&[], &[("wide_vs_scalar", 2.0)]);
        // 25% drop: inside the 30% band → pass.
        let ok = [report(&[], &[("wide_vs_scalar", 1.5)])];
        assert!(gate_speedups(&base, &ok, GateConfig::default()).is_empty());
        // 40% drop: outside the band → fail, message names the band mode.
        let bad = [report(&[], &[("wide_vs_scalar", 1.2)])];
        let failures = gate_speedups(&base, &bad, GateConfig::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("band"));
    }

    #[test]
    fn floor_rule_gates_in_interval_mode_too() {
        let base = report(&[], &[("wide_vs_scalar", 1.1)]);
        // Drops under 1.0 but within 10% slack of baseline at the CI edge:
        // the floor still catches the win turning into a loss.
        let lost = [0.98, 0.99, 1.0].map(|v| report(&[], &[("wide_vs_scalar", v)]));
        let failures = gate_speedups(&base, &lost, GateConfig::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("floor"));
    }

    #[test]
    fn missing_and_zero_keys_never_gate() {
        let base = report(
            &[("zero_bench", 0.0)],
            &[("removed_bench", 9.0), ("zero_ratio", 0.0)],
        );
        let cur = [report(&[("other", 5.0)], &[("brand_new", 0.1)])];
        assert!(gate_speedups(&base, &cur, GateConfig::default()).is_empty());
        assert!(gate_medians(&base, &cur, GateConfig::default()).is_empty());
    }

    #[test]
    fn median_gate_is_lower_is_better() {
        let base = report(&[("tape_native", 100.0)], &[]);
        let faster = [90.0, 95.0, 92.0].map(|v| report(&[("tape_native", v)], &[]));
        assert!(gate_medians(&base, &faster, GateConfig::default()).is_empty());
        let slower = [150.0, 155.0, 149.0].map(|v| report(&[("tape_native", v)], &[]));
        let failures = gate_medians(&base, &slower, GateConfig::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("tape_native"));
    }

    #[test]
    fn latency_keys_render_paired_and_leave_the_bench_table() {
        let trials: Vec<BenchReport> = [
            (41_000.0, 88_000.0),
            (43_000.0, 91_000.0),
            (42_000.0, 90_000.0),
        ]
        .map(|(p50, p99)| {
            report(
                &[
                    ("serve_iiwa14_c4_p50_ns", p50),
                    ("serve_iiwa14_c4_p99_ns", p99),
                    ("tape_native", 100.0),
                ],
                &[],
            )
        })
        .into();
        let lat = latency_table(&trials, "latency").expect("latency keys present");
        let text = lat.render();
        assert!(text.contains("serve_iiwa14_c4"));
        // Rendered in µs: 42_000 ns → 42.0, 90_000 ns → 90.0.
        assert!(text.contains("42.0"));
        assert!(text.contains("90.0"));
        assert!(text.contains("p99"));
        assert!(!text.contains("_p50_ns"), "suffix folded into columns");

        // The plain bench table keeps non-latency medians only.
        let bench = bench_table(&trials, "bench").render();
        assert!(bench.contains("tape_native"));
        assert!(!bench.contains("serve_iiwa14_c4"));

        // No latency keys → no table.
        assert!(latency_table(&[report(&[("x", 1.0)], &[])], "t").is_none());
    }

    #[test]
    fn latency_table_tolerates_a_missing_percentile() {
        let trials = [report(&[("serve_hyq_c1_p50_ns", 10_000.0)], &[])];
        let text = latency_table(&trials, "partial")
            .expect("p50 present")
            .render();
        assert!(text.contains("serve_hyq_c1"));
        assert!(text.contains("10.0"));
        assert!(text.contains("—"), "missing p99 renders as a dash");
    }

    #[test]
    fn latency_medians_gate_lower_is_better() {
        // Same-machine gate: tail latency doubling must fail the gate.
        let base = report(&[("serve_iiwa14_c4_p99_ns", 90_000.0)], &[]);
        let good =
            [88_000.0, 91_000.0, 90_000.0].map(|v| report(&[("serve_iiwa14_c4_p99_ns", v)], &[]));
        assert!(gate_medians(&base, &good, GateConfig::default()).is_empty());
        let slow = [180_000.0, 185_000.0, 179_000.0]
            .map(|v| report(&[("serve_iiwa14_c4_p99_ns", v)], &[]));
        let failures = gate_medians(&base, &slow, GateConfig::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("serve_iiwa14_c4_p99_ns"));
    }

    #[test]
    fn tables_render_bench_and_trace_inputs() {
        let trials = [
            report(&[("tape_native", 100.0)], &[("native_vs_portable4", 1.5)]),
            report(&[("tape_native", 110.0)], &[("native_vs_portable4", 1.6)]),
            report(&[("tape_native", 105.0)], &[("native_vs_portable4", 1.55)]),
        ];
        let text = bench_table(&trials, "demo").render();
        assert!(text.contains("tape_native"));
        assert!(text.contains("1.550x"));
        assert!(text.contains("95% CI"));

        let trace = Trace {
            events: vec![
                SpanEvent {
                    name: "tape.eval".into(),
                    cat: "tape".into(),
                    ts_us: 0.0,
                    dur_us: 10.0,
                    tid: 1,
                    items: Some(64),
                },
                SpanEvent {
                    name: "tape.eval".into(),
                    cat: "tape".into(),
                    ts_us: 20.0,
                    dur_us: 12.0,
                    tid: 1,
                    items: Some(64),
                },
            ],
            threads: vec![(1, "main".into())],
            meta: Vec::new(),
        };
        let text = trace_table(&[trace], "spans").render();
        assert!(text.contains("tape.eval"));
        assert!(text.contains("22.0"));
    }
}
