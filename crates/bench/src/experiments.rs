//! One function per table/figure of the paper's evaluation. Each returns a
//! rendered report comparing the paper's numbers with this reproduction's.
//!
//! The `quick` flags shrink trial counts so the test suite stays fast; the
//! binaries run the full versions.

use crate::report::{speedup, us, Table};
use robo_baselines::{random_inputs, CpuBaseline, GpuModel};
use robo_dynamics::engine::GradientBackend;
use robo_fixed::{Fix12_4, Fix14_18, Fix14_6, Fix18_14, Fix32_16, Fix8_4};
use robo_model::{robots, RobotModel};
use robo_sim::{CoprocessorSystem, IoChannel};
use robo_spatial::Scalar;
use robo_trajopt::{
    solve, ControlRateModel, IlqrOptions, ReachingTask, ACTUATOR_RATE_HZ, MPC_MINIMUM_RATE_HZ,
    PAPER_OPT_ITERATIONS,
};
use robomorphic_core::{
    table2_rows, Accelerator, AsicPlatform, Folding, FpgaPlatform, GradientTemplate,
};

/// Fraction of per-time-step MPC work spent in the dynamics gradient
/// kernel, used by the control-rate model. The paper reports 30–90% across
/// implementations (§3); 45% makes Figure 4's thresholds and Figure 15's
/// Amdahl-limited gains mutually consistent.
pub const GRADIENT_FRACTION: f64 = 0.45;

fn iiwa_accelerator() -> Accelerator {
    GradientTemplate::new().customize(&robots::iiwa14())
}

fn measured_gradient_time(robot: &RobotModel, trials: usize) -> f64 {
    let mut cpu = CpuBaseline::new(robot);
    let input = &random_inputs(robot, 1, 0xFEED)[0];
    cpu.time_single(input, trials)
}

/// §4's worked example: the iiwa joint-2 transform sparsity and the
/// resulting multiplier/adder pruning.
pub fn sec4_sparsity_example() -> String {
    let robot = robots::iiwa14();
    let mut t = Table::new("§4 example: iiwa joint 1→2 transform sparsity")
        .headers(["quantity", "paper", "ours"]);
    let r = robo_sparsity::joint_reduction(&robot, 1);
    t.row([
        "populated elements".to_string(),
        "13 / 36".into(),
        format!("{} / 36", r.nonzeros),
    ]);
    t.row([
        "multiplier reduction".to_string(),
        "64%".into(),
        format!("{:.0}%", r.mul_reduction_pct),
    ]);
    t.row([
        "adder reduction".to_string(),
        "77%".into(),
        format!("{:.0}%", r.add_reduction_pct),
    ]);
    let mask = robo_sparsity::x_pattern(&robot, 1);
    format!("{}\njoint 2 structural pattern:\n{}", t.render(), mask)
}

/// Table 1: hardware system configurations (paper platforms vs our
/// substitutions).
pub fn table1_platforms() -> String {
    let mut t = Table::new("Table 1: hardware system configurations").headers([
        "platform",
        "paper",
        "this reproduction",
    ]);
    t.row([
        "CPU",
        "Intel i7-7700, 4 cores, 3.6 GHz",
        "host CPU, measured Rust implementation (thread pool)",
    ]);
    t.row([
        "GPU",
        "NVIDIA RTX 2080, 2944 CUDA cores (46 SMs), 1.7 GHz",
        "analytic latency model (46 SMs), calibrated once",
    ]);
    t.row([
        "FPGA",
        "Xilinx XCVU9P, 55.6 MHz, 6840 DSPs",
        "cycle-level simulator at 55.6 MHz, 6840-DSP budget",
    ]);
    let threads = CpuBaseline::new(&robots::iiwa14()).threads();
    t.note(format!("host CPU threads available here: {threads}"));
    t.render()
}

/// Figure 4: estimated control rates vs trajectory length for the three
/// robot classes, against the 250 Hz and 1 kHz thresholds.
pub fn fig04_control_rates(quick: bool) -> String {
    let trials = if quick { 200 } else { 5000 };
    let (manip, quad, humanoid) = robots::figure4_robots();
    let robots_list = [&manip, &quad, &humanoid];
    let models: Vec<ControlRateModel> = robots_list
        .iter()
        .map(|r| {
            ControlRateModel::new(
                PAPER_OPT_ITERATIONS,
                measured_gradient_time(r, trials),
                GRADIENT_FRACTION,
            )
        })
        .collect();

    let mut t = Table::new("Figure 4: control rates (Hz) vs trajectory time steps").headers([
        "time steps",
        "manipulator",
        "quadruped",
        "humanoid",
    ]);
    for steps in [10, 16, 25, 32, 50, 64, 80, 100, 128] {
        let mut row = vec![steps.to_string()];
        for m in &models {
            row.push(format!("{:.0}", m.control_rate_hz(steps)));
        }
        t.row(row);
    }
    for (robot, m) in robots_list.iter().zip(&models) {
        t.note(format!(
            "{}: gradient {} µs → 1 kHz up to {} steps, 250 Hz up to {} steps",
            robot.name(),
            us(m.gradient_time_s),
            m.max_timesteps_at(ACTUATOR_RATE_HZ),
            m.max_timesteps_at(MPC_MINIMUM_RATE_HZ),
        ));
    }
    t.note("paper (manipulator): 1 kHz under ~25 steps; 250 Hz up to ~80 steps");
    t.note("paper: the gap is worse for the quadruped and humanoid");
    t.render()
}

/// Figure 10: single-computation latency breakdown (ID / ∇ID / M⁻¹) for
/// CPU, GPU, and the FPGA accelerator.
pub fn fig10_single_latency(quick: bool) -> String {
    let trials = if quick { 200 } else { 10000 };
    let robot = robots::iiwa14();
    let cpu = CpuBaseline::new(&robot);
    let input = &random_inputs(&robot, 1, 0xF16)[0];
    let cpu_seg = cpu.time_segments(input, trials);
    let gpu_seg = GpuModel::rtx2080().single_segments(7);

    let accel = iiwa_accelerator();
    let fpga = FpgaPlatform::xcvu9p();
    let b = accel.schedule().breakdown();
    let cyc = |c: usize| c as f64 / fpga.clock_hz;
    let fpga_total = accel.single_latency_s(fpga.clock_hz);

    let mut t = Table::new("Figure 10: single dynamics gradient latency (µs)")
        .headers(["platform", "ID", "grad-ID", "Minv", "total", "vs FPGA"]);
    t.row([
        "CPU (measured)".to_string(),
        us(cpu_seg.id_s),
        us(cpu_seg.grad_s),
        us(cpu_seg.minv_s),
        us(cpu_seg.total()),
        speedup(cpu_seg.total() / fpga_total),
    ]);
    t.row([
        "GPU (modeled)".to_string(),
        us(gpu_seg.id_s),
        us(gpu_seg.grad_s),
        us(gpu_seg.minv_s),
        us(gpu_seg.total()),
        speedup(gpu_seg.total() / fpga_total),
    ]);
    t.row([
        "FPGA (simulated)".to_string(),
        us(cyc(b.id_cycles)),
        us(cyc(b.grad_cycles)),
        us(cyc(b.minv_cycles)),
        us(fpga_total),
        speedup(1.0),
    ]);
    t.note(format!(
        "FPGA: {} cycles at 55.6 MHz",
        accel.schedule().single_latency_cycles()
    ));
    t.note("paper: FPGA 8x faster than CPU and 86x faster than GPU");
    t.render()
}

/// Figure 11: operation counts of the transform matvec unit under the four
/// sparsity treatments.
pub fn fig11_sparsity_ops() -> String {
    let rep = robo_sparsity::fig11_report(&robots::iiwa14());
    let mut t = Table::new("Figure 11: transform matvec unit operations (iiwa)").headers([
        "configuration",
        "muls",
        "adds",
        "total",
    ]);
    t.row([
        "no sparsity (dense)".to_string(),
        rep.dense.muls.to_string(),
        rep.dense.adds.to_string(),
        rep.dense.total().to_string(),
    ]);
    t.row([
        "robot-agnostic".to_string(),
        rep.robot_agnostic.muls.to_string(),
        rep.robot_agnostic.adds.to_string(),
        rep.robot_agnostic.total().to_string(),
    ]);
    t.row([
        "robomorphic, superposition all joints (ours)".to_string(),
        rep.superposition.muls.to_string(),
        rep.superposition.adds.to_string(),
        rep.superposition.total().to_string(),
    ]);
    t.row([
        "robomorphic, average all joints (bound)".to_string(),
        format!("{:.1}", rep.average_muls),
        format!("{:.1}", rep.average_adds),
        format!("{:.1}", rep.average_muls + rep.average_adds),
    ]);
    t.note(format!(
        "robot-specific sparsity recovered by superposition: {:.1}% (paper: 33.3%)",
        rep.recovered_sparsity_fraction * 100.0
    ));
    t.render()
}

/// Figure 12: MPC cost convergence across numeric types, plus a direct
/// kernel-precision table showing where the floor lies.
pub fn fig12_precision(quick: bool) -> String {
    let mut task = ReachingTask::iiwa_reach();
    if quick {
        task.horizon = 10;
    }
    let opts = IlqrOptions {
        iterations: if quick { 6 } else { 12 },
        ..Default::default()
    };

    fn run<S: Scalar>(task: &ReachingTask, opts: &IlqrOptions) -> (String, Vec<f64>) {
        (S::name(), solve::<S>(task, opts).costs)
    }
    let runs = vec![
        run::<f32>(&task, &opts),
        run::<Fix32_16>(&task, &opts),
        run::<Fix14_18>(&task, &opts),
        run::<Fix18_14>(&task, &opts),
        run::<Fix14_6>(&task, &opts),
    ];

    let mut headers = vec!["iteration".to_string()];
    headers.extend(runs.iter().map(|(n, _)| n.clone()));
    let mut t =
        Table::new("Figure 12: optimization cost vs iteration by numeric type").headers(headers);
    let iters = runs[0].1.len();
    for i in 0..iters {
        let mut row = vec![i.to_string()];
        for (_, costs) in &runs {
            row.push(format!("{:.2}", costs[i]));
        }
        t.row(row);
    }
    t.note("paper: a range of fixed-point types converge like 32-bit float,");
    t.note("including the 20-bit Fixed{14,6}");

    // Companion table: raw kernel precision per type on the simulated
    // accelerator, via the engine layer's f64 boundary (the backend
    // marshals inputs to `S` and outputs back, as the hardware I/O does).
    let robot = robots::iiwa14();
    let input = &random_inputs(&robot, 1, 0xF12)[0];
    let reference = robo_sim::AcceleratorBackend::<f64>::new(&robot)
        .gradient(&input.q, &input.qd, &input.qdd, &input.minv)
        .expect("input matches robot");
    let scale = reference.dqdd_dq.max_abs().max(1.0);
    fn kernel_err<S: Scalar>(
        robot: &RobotModel,
        input: &robo_baselines::GradientInput,
        reference: &robo_dynamics::DynamicsGradient<f64>,
        scale: f64,
    ) -> (String, f64) {
        let out = robo_sim::AcceleratorBackend::<S>::new(robot)
            .gradient(&input.q, &input.qd, &input.qdd, &input.minv)
            .expect("input matches robot");
        let err = out.dqdd_dq.max_abs_diff(&reference.dqdd_dq) / scale;
        (S::name(), err)
    }
    let errors = vec![
        kernel_err::<f32>(&robot, input, &reference, scale),
        kernel_err::<Fix32_16>(&robot, input, &reference, scale),
        kernel_err::<Fix14_18>(&robot, input, &reference, scale),
        kernel_err::<Fix18_14>(&robot, input, &reference, scale),
        kernel_err::<Fix14_6>(&robot, input, &reference, scale),
        kernel_err::<Fix12_4>(&robot, input, &reference, scale),
        kernel_err::<Fix8_4>(&robot, input, &reference, scale),
    ];
    let mut e = Table::new("Figure 12 companion: simulated-accelerator kernel error vs f64")
        .headers(["numeric type", "max relative error"]);
    for (name, err) in errors {
        e.row([name, format!("{err:.2e}")]);
    }
    e.note("Fixed{12,4} and Fixed{8,4} sit below the useful precision floor");
    format!("{}\n{}", t.render(), e.render())
}

/// Figure 13: coprocessor round-trip latency (computation + I/O) for
/// batches of 10–128 gradient computations.
pub fn fig13_roundtrip(quick: bool) -> String {
    let trials = if quick { 5 } else { 100 };
    let robot = robots::iiwa14();
    let cpu = CpuBaseline::new(&robot);
    let gpu = GpuModel::rtx2080();
    let coproc = CoprocessorSystem::fpga_default(iiwa_accelerator());

    // The paper's CPU is a quad-core i7-7700. When this machine exposes
    // fewer cores, also report a 4-core-equivalent estimate: the measured
    // (serial) time divided across 4 cores, plus the thread-dispatch
    // overhead a real multi-core run pays ("thread and kernel launch
    // overheads flatten the scaling of both the CPU and GPU at low numbers
    // of time steps", §6.3).
    let host_threads = cpu.threads().max(1);
    let paper_cores = 4.0_f64;
    let dispatch_overhead_s = 12e-6;
    let mut t =
        Table::new("Figure 13: coprocessor round-trip latency (µs) vs time steps").headers([
            "steps",
            "CPU measured",
            "CPU 4-core est.",
            "GPU",
            "FPGA",
            "FPGA vs CPU4",
            "FPGA vs GPU",
        ]);
    for steps in [10, 16, 32, 64, 128] {
        // One gradient per time step of a rolled-out trajectory (§6.3).
        let inputs = std::sync::Arc::new(robo_baselines::trajectory_inputs(
            &robot,
            steps,
            0.01,
            steps as u64,
        ));
        let cpu_s = cpu.time_batch(&inputs, trials);
        let cpu4_s = cpu_s * host_threads as f64 / paper_cores + dispatch_overhead_s;
        let gpu_s = gpu.batch_latency_s(7, steps);
        let fpga_s = coproc.round_trip(steps).total_s;
        t.row([
            steps.to_string(),
            us(cpu_s),
            us(cpu4_s),
            us(gpu_s),
            us(fpga_s),
            speedup(cpu4_s / fpga_s),
            speedup(gpu_s / fpga_s),
        ]);
    }
    t.note(format!(
        "host exposes {host_threads} hardware thread(s); the 4-core column scales \
         the measured time to the paper's quad-core i7"
    ));
    t.note("paper: FPGA 2.2x-2.9x over CPU and 1.9x-5.5x over GPU;");
    t.note("CPU beats GPU below 64 steps, GPU overtakes at 64+");
    t.note(format!(
        "FPGA I/O: {} ({} B in / {} B out per step)",
        coproc.channel().name,
        coproc.input_bytes_per_step(),
        coproc.output_bytes_per_step()
    ));
    t.render()
}

/// Table 2: FPGA vs synthesized-ASIC clock, area, and power.
pub fn table2_asic() -> String {
    let rows = table2_rows(&iiwa_accelerator());
    let paper = [
        ("FPGA", "Typical", 14, 55.6, None, 9.572),
        ("Synthesized ASIC", "Slow", 12, 250.0, Some(1.627), 0.921),
        ("Synthesized ASIC", "Typical", 12, 400.0, Some(1.885), 1.095),
    ];
    let mut t = Table::new("Table 2: accelerator computational pipeline, FPGA vs ASIC").headers([
        "platform",
        "corner",
        "node",
        "clock MHz",
        "area mm² (paper/ours)",
        "power W (paper/ours)",
    ]);
    for (row, p) in rows.iter().zip(paper.iter()) {
        let area = match (p.4, row.area_mm2) {
            (Some(pa), Some(oa)) => format!("{pa:.3} / {oa:.3}"),
            _ => "n/a".into(),
        };
        t.row([
            row.platform.clone(),
            row.corner.clone(),
            format!("{} nm", row.node_nm),
            format!("{:.1}", row.max_clock_mhz),
            area,
            format!("{:.3} / {:.3}", p.5, row.power_w),
        ]);
    }
    t.note("ASIC area/power from the calibrated 12 nm cost model (see DESIGN.md)");
    t.render()
}

/// Figure 14: single-computation latency, FPGA vs ASIC corners.
pub fn fig14_asic_latency() -> String {
    let accel = iiwa_accelerator();
    let fpga = FpgaPlatform::xcvu9p();
    let fpga_s = accel.single_latency_s(fpga.clock_hz);
    let mut t = Table::new("Figure 14: single computation latency, FPGA vs ASIC").headers([
        "platform",
        "clock MHz",
        "latency µs",
        "speedup vs FPGA",
    ]);
    t.row([
        "FPGA".to_string(),
        format!("{:.1}", fpga.clock_hz / 1e6),
        us(fpga_s),
        speedup(1.0),
    ]);
    for (name, asic) in [
        ("ASIC (slow)", AsicPlatform::slow()),
        ("ASIC (typical)", AsicPlatform::typical()),
    ] {
        let s = accel.single_latency_s(asic.clock_hz());
        t.row([
            name.to_string(),
            format!("{:.0}", asic.clock_hz() / 1e6),
            us(s),
            speedup(fpga_s / s),
        ]);
    }
    t.note("paper: 4.5x (slow) to 7.2x (typical) speedup over the FPGA");
    t.render()
}

/// Figure 15: projected control-rate improvement with the accelerator.
pub fn fig15_projected_rates(quick: bool) -> String {
    let trials = if quick { 200 } else { 5000 };
    let robot = robots::iiwa14();
    let grad_cpu = measured_gradient_time(&robot, trials);
    let base = ControlRateModel::new(PAPER_OPT_ITERATIONS, grad_cpu, GRADIENT_FRACTION);

    let accel = iiwa_accelerator();
    let fpga_coproc = CoprocessorSystem::fpga_default(accel.clone());
    // The ASIC deploys as a system-on-chip: on-die link, negligible
    // per-call overhead (§6.4).
    let soc_channel = IoChannel {
        name: "on-chip".into(),
        bandwidth_bytes_per_s: 50e9,
        per_call_overhead_s: 0.5e-6,
    };
    let asic_slow = CoprocessorSystem::new(
        accel.clone(),
        AsicPlatform::slow().clock_hz(),
        soc_channel.clone(),
    );
    let asic_typ = CoprocessorSystem::new(accel, AsicPlatform::typical().clock_hz(), soc_channel);

    let mut t = Table::new("Figure 15: projected control rates (Hz) with the accelerator")
        .headers(["steps", "CPU baseline", "FPGA", "ASIC slow", "ASIC typical"]);
    let horizons = [10, 16, 25, 32, 50, 64, 80, 100, 115, 128];
    let accel_rate = |sys: &CoprocessorSystem, steps: usize| {
        let grad = sys.round_trip(steps).total_s / steps as f64;
        base.with_accelerated_gradient(grad).control_rate_hz(steps)
    };
    for steps in horizons {
        t.row([
            steps.to_string(),
            format!("{:.0}", base.control_rate_hz(steps)),
            format!("{:.0}", accel_rate(&fpga_coproc, steps)),
            format!("{:.0}", accel_rate(&asic_slow, steps)),
            format!("{:.0}", accel_rate(&asic_typ, steps)),
        ]);
    }
    // Horizon extension at 250 Hz, from the measured baseline and from a
    // paper-calibrated baseline (the paper's model implies a ~2.25 µs
    // gradient on its i7; our host differs, so both are reported).
    let fpga_grad_100 = fpga_coproc.round_trip(100).total_s / 100.0;
    let fpga_model = base.with_accelerated_gradient(fpga_grad_100);
    t.note(format!(
        "250 Hz horizon (measured CPU): baseline {} steps → FPGA {} steps",
        base.max_timesteps_at(MPC_MINIMUM_RATE_HZ),
        fpga_model.max_timesteps_at(MPC_MINIMUM_RATE_HZ),
    ));
    let paper_base = ControlRateModel::new(PAPER_OPT_ITERATIONS, 2.25e-6, GRADIENT_FRACTION);
    let paper_accel = paper_base.with_accelerated_gradient(fpga_grad_100);
    t.note(format!(
        "250 Hz horizon (paper-calibrated CPU): {} steps → {} steps (paper: ~80 → ~100-115)",
        paper_base.max_timesteps_at(MPC_MINIMUM_RATE_HZ),
        paper_accel.max_timesteps_at(MPC_MINIMUM_RATE_HZ),
    ));
    t.note("paper: ASIC corners show a narrow range");
    t.render()
}

/// §7: customizing the same template to other robot models (quadruped and
/// humanoid), demonstrating limb-parallel generalization.
pub fn sec7_other_robots() -> String {
    let template = GradientTemplate::new();
    let fpga = FpgaPlatform::xcvu9p();
    let mut t = Table::new("§7: the same template customized per robot").headers([
        "robot",
        "limbs L",
        "max links N",
        "datapaths",
        "latency cycles",
        "latency µs (FPGA)",
        "DSP util",
    ]);
    for robot in [
        robots::iiwa14(),
        robots::hyq(),
        robots::hyq_floating(),
        robots::atlas(),
    ] {
        let accel = template.customize(&robot);
        let datapaths: usize = accel
            .limb_plans()
            .iter()
            .map(|p| p.dq_datapaths + p.dqd_datapaths + 1)
            .sum();
        t.row([
            robot.name().to_string(),
            accel.params().l_limbs.to_string(),
            accel.params().n_links_max.to_string(),
            datapaths.to_string(),
            accel.schedule().single_latency_cycles().to_string(),
            us(accel.single_latency_s(fpga.clock_hz)),
            format!("{:.0}%", fpga.dsp_utilization(&accel.resources()) * 100.0),
        ]);
    }
    t.note("paper: HyQ gets 4 parallel limb processors with 3 datapaths each;");
    t.note("larger robots trade DSP budget for limb-level parallelism");

    let hyq = robots::hyq();
    let atlas = robots::atlas();
    let knee = robo_sparsity::x_pattern(&hyq, 2);
    let shoulder_idx = atlas
        .links()
        .iter()
        .position(|l| l.name == "r_arm_shx")
        .expect("atlas has a right shoulder");
    let shoulder = robo_sparsity::x_pattern(&atlas, shoulder_idx);
    format!(
        "{}\nHyQ left-front knee pattern ({} nnz):\n{}\nAtlas right shoulder pattern ({} nnz):\n{}",
        t.render(),
        knee.count(),
        knee,
        shoulder.count(),
        shoulder
    )
}

/// Ablation: the §5.2 folding levels (the design choice DESIGN.md calls
/// out), showing why the paper folds aggressively.
pub fn ablation_folding() -> String {
    let robot = robots::iiwa14();
    let fpga = FpgaPlatform::xcvu9p();
    let mut t = Table::new("Ablation: folding levels (iiwa accelerator)").headers([
        "configuration",
        "var muls",
        "DSPs",
        "DSP util",
        "fits?",
        "latency cycles",
    ]);
    let configs = [
        ("folded (paper design)", Folding::paper_default()),
        (
            "stage-folded only (chains unrolled)",
            Folding {
                fold_link_chains: false,
                fold_forward_stages: true,
                fuse_minv: true,
            },
        ),
        (
            "chain-folded only (stages unrolled)",
            Folding {
                fold_link_chains: true,
                fold_forward_stages: false,
                fuse_minv: true,
            },
        ),
        ("fully unfolded", Folding::unfolded()),
    ];
    for (name, folding) in configs {
        let accel = GradientTemplate::with_folding(folding).customize(&robot);
        let r = accel.resources();
        t.row([
            name.to_string(),
            r.var_muls.to_string(),
            fpga.dsps_used(&r).to_string(),
            format!("{:.0}%", fpga.dsp_utilization(&r) * 100.0),
            if fpga.fits(&r) { "yes" } else { "NO" }.to_string(),
            accel.schedule().single_latency_cycles().to_string(),
        ]);
    }
    t.note("paper: \"without aggressive folding ... impossible to implement\"");
    t.note("on the FPGA's limited DSP multipliers (§5.2)");
    t.render()
}

/// Ablation: per-operation rounding vs wide (DSP-cascade) accumulation in
/// the fixed-point functional units.
pub fn ablation_accumulator() -> String {
    let robot = robots::iiwa14();
    let input = &random_inputs(&robot, 1, 0xACC)[0];
    let reference = robo_sim::AcceleratorBackend::<f64>::new(&robot)
        .gradient(&input.q, &input.qd, &input.qdd, &input.minv)
        .expect("input matches robot");
    let scale = reference.dqdd_dq.max_abs().max(1.0);

    fn err_for<S: Scalar>(
        robot: &RobotModel,
        input: &robo_baselines::GradientInput,
        reference: &robo_dynamics::DynamicsGradient<f64>,
        scale: f64,
        accumulation: robo_sim::Accumulation,
    ) -> f64 {
        let sim = robo_sim::AcceleratorSim::<S>::with_accumulation(robot, accumulation);
        let out = robo_sim::AcceleratorBackend::from_sim(sim)
            .gradient(&input.q, &input.qd, &input.qdd, &input.minv)
            .expect("input matches robot");
        out.dqdd_dq.max_abs_diff(&reference.dqdd_dq) / scale
    }

    let mut t = Table::new("Ablation: accumulator width in the fixed-point datapath").headers([
        "numeric type",
        "per-op rounding error",
        "wide-MAC error",
    ]);
    use robo_sim::Accumulation::{PerOperation, Wide};
    macro_rules! row {
        ($ty:ty) => {
            t.row([
                <$ty as Scalar>::name(),
                format!(
                    "{:.2e}",
                    err_for::<$ty>(&robot, input, &reference, scale, PerOperation)
                ),
                format!(
                    "{:.2e}",
                    err_for::<$ty>(&robot, input, &reference, scale, Wide)
                ),
            ]);
        };
    }
    row!(Fix32_16);
    row!(Fix14_18);
    row!(Fix14_6);
    t.note("wide accumulation models DSP-block MAC cascades (one rounding per");
    t.note("tree instead of one per product); only the X· transform units are");
    t.note("MAC trees, so end-to-end kernel error moves modestly — the per-unit");
    t.note("effect is isolated in robo-sim's xunit tests");
    t.render()
}

/// Scaling sweep: how the customized accelerator grows with the number of
/// links `N` (the §5.2 complexity analysis: O(N) latency, O(N²) work).
pub fn sweep_links() -> String {
    let fpga = FpgaPlatform::xcvu9p();
    let mut t = Table::new("Scaling: accelerator vs serial-chain length N").headers([
        "N",
        "latency cycles",
        "latency µs",
        "var muls",
        "DSP util",
        "throughput (grad/s)",
    ]);
    for n in [2usize, 3, 5, 7, 9, 12] {
        let robot = robots::serial_chain(n, robo_model::JointType::RevoluteZ);
        let accel = GradientTemplate::new().customize(&robot);
        let r = accel.resources();
        t.row([
            n.to_string(),
            accel.schedule().single_latency_cycles().to_string(),
            us(accel.single_latency_s(fpga.clock_hz)),
            r.var_muls.to_string(),
            format!("{:.0}%", fpga.dsp_utilization(&r) * 100.0),
            format!("{:.0}", accel.throughput_per_s(fpga.clock_hz)),
        ]);
    }
    t.note("latency grows O(N) (datapaths are parallel); multipliers grow");
    t.note("O(N) with chain folding — the total work O(N²) is folded in time");
    t.render()
}

/// Code generation statistics: the §7 automation path, per robot.
pub fn codegen_stats() -> String {
    use robo_codegen::{
        generate_top, generate_x_unit, lint, optimize_with_report, to_verilog, CompiledNetlist,
        RtlFormat,
    };
    let mut t = Table::new("Codegen: generated RTL per robot (§7 automation)").headers([
        "robot",
        "X-unit DSP muls (min..max, dense=36)",
        "opt: nodes pre->post",
        "tape: instrs pre->post fusion",
        "threaded: instrs->blocks",
        "jit: code B / patches",
        "top-level instances",
        "verilog lint",
    ]);
    for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
        let mut lo = usize::MAX;
        let mut hi = 0;
        let mut nodes_before = 0;
        let mut nodes_after = 0;
        let mut tape_before = 0;
        let mut tape_after = 0;
        let mut threaded_blocks = 0;
        let mut jit_bytes = 0;
        let mut jit_patches = 0;
        let mut jit_ok = true;
        let mut lint_ok = true;
        for j in 0..robot.dof() {
            let (opt, report) = optimize_with_report(&generate_x_unit(&robot, j));
            let mut compiled = CompiledNetlist::<f64>::compile(&opt);
            let report = report.with_fusion(compiled.fusion_counts());
            let muls = report.after.muls;
            lo = lo.min(muls);
            hi = hi.max(muls);
            nodes_before += report.nodes_before;
            nodes_after += report.nodes_after;
            tape_before += compiled.tape_len() + compiled.fusion_counts().total();
            tape_after += compiled.tape_len();
            threaded_blocks += compiled.threaded_blocks();
            jit_ok &= compiled.enable_jit();
            if let Some(r) = compiled.jit_report() {
                jit_bytes += r.code_bytes;
                jit_patches += r.patches;
            }
            lint_ok &= lint(&to_verilog(&opt, RtlFormat::q16_16())).is_ok();
        }
        let accel = GradientTemplate::new().customize(&robot);
        let top = generate_top(&accel, RtlFormat::q16_16());
        t.row([
            robot.name().to_string(),
            format!("{lo}..{hi}"),
            format!("{nodes_before}->{nodes_after}"),
            format!("{tape_before}->{tape_after}"),
            format!("{tape_after}->{threaded_blocks}"),
            if jit_ok {
                format!("{jit_bytes} / {jit_patches}")
            } else {
                "n/a".to_string()
            },
            top.manifest.len().to_string(),
            if lint_ok { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    let tier = robo_spatial::ExecTier::detect();
    t.note("RTL is lowered from the *optimized* netlist (constant folding, CSE,");
    t.note("dead-node elimination); every generated netlist also *executes* and");
    t.note("matches the reference transform exactly (tested in robo-codegen)");
    t.note("tape column: peephole fusion (mul+add etc.) shrinking the compiled");
    t.note("register tape, two rounding steps preserved (bit-identical, not FMA)");
    t.note("threaded column: direct-threaded dispatch blocks after opcode-affinity");
    t.note("scheduling clusters same-opcode runs and tiling folds them into");
    t.note("x2/x4 superinstructions (shared by the scalar and wide lowerings)");
    t.note("jit column: machine-code bytes / patched immediates the template JIT");
    t.note("stitches across the robot's X-unit f64 tapes (inline SSE lowering;");
    t.note("n/a when the host has no JIT backend)");
    t.note(format!(
        "serving tier on this host: {} ({} f64 / {} f32 states per wide instruction)",
        tier,
        f64::preferred_lanes(tier),
        f32::preferred_lanes(tier),
    ));
    let mut out = t.render();
    out.push('\n');
    out.push_str(&family_sharing_stats());
    out
}

/// Multifunction kernel family: shared-subexpression savings of the
/// merged RNEA / FD / ∇ID netlist vs three dedicated single-kernel
/// netlists, per robot (the Dadu-RBD-style datapath-sharing argument).
fn family_sharing_stats() -> String {
    use robo_codegen::generate_kernel_family;
    use robo_dynamics::engine::KernelKind;
    let mut t = Table::new("Codegen: multifunction kernel family sharing (id+fd+grad)").headers([
        "robot",
        "dedicated nodes",
        "merged nodes",
        "shared nodes",
        "dedicated DSP muls",
        "merged DSP muls",
        "shared DSP muls",
        "shared adds",
    ]);
    for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
        let mask = robo_sparsity::superposition_pattern(&robot);
        let (_, _, sharing) = generate_kernel_family(&robot, mask, &KernelKind::ALL)
            .expect("distinct kernels never collide on output names");
        t.row([
            robot.name().to_string(),
            sharing.dedicated_nodes().to_string(),
            sharing.merged_nodes.to_string(),
            sharing.shared_nodes().to_string(),
            sharing.dedicated_stats().muls.to_string(),
            sharing.merged.muls.to_string(),
            sharing.shared_dsp_muls().to_string(),
            sharing.shared_adds().to_string(),
        ]);
    }
    t.note("dedicated = the three kernels optimized as separate netlists;");
    t.note("merged = one netlist emitting all three kernels, optimized together");
    t.note("(shared trig inputs, X/Xᵀ banks and common subexpressions fuse);");
    t.note("shared = dedicated − merged, the circuit the kernels reuse");
    t.render()
}

/// §8-style workload characterization of the gradient kernel, from exact
/// operation counting.
pub fn sec8_workload() -> String {
    let mut t = Table::new("§8: dynamics gradient workload characterization").headers([
        "robot",
        "ID flops",
        "grad-ID flops",
        "Minv flops",
        "mul frac",
        "working set",
        "fits 32kB L1?",
        "ops/byte",
    ]);
    for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
        let w = robo_profile::kernel_workload(&robot);
        t.row([
            robot.name().to_string(),
            w.id_ops.flops().to_string(),
            w.grad_ops.flops().to_string(),
            w.minv_ops.flops().to_string(),
            format!("{:.0}%", w.total().mul_fraction() * 100.0),
            format!("{:.1} kB", w.working_set_bytes as f64 / 1024.0),
            if w.fits_cache(32 * 1024) { "yes" } else { "no" }.to_string(),
            format!("{:.1}", w.arithmetic_intensity()),
        ]);
    }
    t.note("paper (§8, citing the RBD-Benchmarks analysis): compute-bound,");
    t.note("<10% memory stalls, working set fits a 32 kB L1; counts here come");
    t.note("from running the real kernels over an op-counting scalar type");
    t.render()
}

/// §7's other-kernels claim: the methodology applied to collision checking
/// and forward kinematics, customized per robot.
pub fn sec7_other_kernels() -> String {
    use robo_collision::CollisionTemplate;
    use robomorphic_core::KinematicsTemplate;
    let mut t = Table::new("§7: other kernels under the same methodology").headers([
        "robot",
        "FK latency cyc",
        "FK var muls",
        "collision pairs",
        "collision latency cyc",
        "collision var muls",
    ]);
    for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
        let fk = KinematicsTemplate::new().customize(&robot);
        let col = CollisionTemplate::new().customize(&robot);
        t.row([
            robot.name().to_string(),
            fk.latency_cycles().to_string(),
            fk.resources().var_muls.to_string(),
            col.pairs.to_string(),
            col.latency_cycles().to_string(),
            col.var_muls().to_string(),
        ]);
    }
    t.note("collision pairs are morphology-pruned (graph distance ≤ 2 excluded),");
    t.note("so the parallel distance-unit count is read straight off the topology");
    t.render()
}

/// §6.4's system-on-chip projection: pipelines per die, aggregate
/// throughput, and power vs the FPGA.
pub fn sec64_soc() -> String {
    let accel = iiwa_accelerator();
    let r = accel.resources();
    let asic = AsicPlatform::typical();
    let fpga = FpgaPlatform::xcvu9p();
    let die_mm2 = 122.0; // Intel 14 nm quad-core SkyLake reference (§6.4)

    let pipelines = asic.pipelines_per_die(&r, die_mm2);
    let per_pipeline_tput = accel.throughput_per_s(asic.clock_hz());
    let mut t = Table::new("§6.4: system-on-chip projection (iiwa pipeline)")
        .headers(["quantity", "paper", "ours"]);
    t.row([
        "pipeline area (typical corner)".to_string(),
        "1.885 mm²".into(),
        format!("{:.3} mm²", asic.area_mm2(&r)),
    ]);
    t.row([
        "pipelines per 122 mm² die".to_string(),
        "~65x pipeline area".into(),
        pipelines.to_string(),
    ]);
    t.row([
        "aggregate throughput".to_string(),
        "-".into(),
        format!(
            "{:.1} M gradients/s ({} x {:.2} M)",
            pipelines as f64 * per_pipeline_tput / 1e6,
            pipelines,
            per_pipeline_tput / 1e6
        ),
    ]);
    t.row([
        "pipeline power vs FPGA".to_string(),
        "8.7x lower".into(),
        format!("{:.1}x lower", fpga.power_w / asic.power_w(&r)),
    ]);
    t.note("one FPGA fits a single pipeline (§6.3); the SoC projection is why");
    t.note("the paper argues for ASICs on multi-limb robots and batched MPC");
    t.render()
}

/// Runs every experiment, returning `(id, report)` pairs in paper order.
pub fn all(quick: bool) -> Vec<(&'static str, String)> {
    vec![
        ("fig04_control_rates", fig04_control_rates(quick)),
        ("sec4_sparsity_example", sec4_sparsity_example()),
        ("table1_platforms", table1_platforms()),
        ("fig10_single_latency", fig10_single_latency(quick)),
        ("fig11_sparsity_ops", fig11_sparsity_ops()),
        ("fig12_precision", fig12_precision(quick)),
        ("fig13_roundtrip", fig13_roundtrip(quick)),
        ("table2_asic", table2_asic()),
        ("fig14_asic_latency", fig14_asic_latency()),
        ("fig15_projected_rates", fig15_projected_rates(quick)),
        ("sec7_other_robots", sec7_other_robots()),
        ("ablation_folding", ablation_folding()),
        ("ablation_accumulator", ablation_accumulator()),
        ("sweep_links", sweep_links()),
        ("codegen_stats", codegen_stats()),
        ("sec8_workload", sec8_workload()),
        ("sec7_other_kernels", sec7_other_kernels()),
        ("sec64_soc", sec64_soc()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec4_reports_paper_numbers() {
        let s = sec4_sparsity_example();
        assert!(s.contains("13 / 36"));
        assert!(s.contains("64%"));
        assert!(s.contains("77%"));
    }

    #[test]
    fn fig11_contains_all_configurations() {
        let s = fig11_sparsity_ops();
        assert!(s.contains("no sparsity"));
        assert!(s.contains("superposition"));
        assert!(s.contains("average"));
    }

    #[test]
    fn fig14_reports_paper_speedups() {
        let s = fig14_asic_latency();
        assert!(s.contains("4.5x"));
        assert!(s.contains("7.2x"));
    }

    #[test]
    fn table2_has_three_platforms() {
        let s = table2_asic();
        assert!(s.matches("ASIC").count() >= 2);
        assert!(s.contains("9.572"));
    }

    #[test]
    fn quick_experiments_all_render() {
        for (name, report) in all(true) {
            assert!(report.contains("=="), "experiment {name} produced no table");
            assert!(report.len() > 100, "experiment {name} suspiciously short");
        }
    }
}
