//! CI bench-regression guard: compares a current [`BenchReport`] JSON
//! artifact against a committed baseline and fails on slowdowns.
//!
//! Absolute medians are machine-specific (a laptop, a CI runner, and the
//! paper's Xeon all differ), so the guard's primary signal is the
//! *machine-relative speedup ratios* each bench records — wide-over-scalar,
//! threaded-over-interpreted, and so on. A tiered serving path that stops
//! being faster than its own scalar fallback shows up identically on every
//! host, with no cross-machine calibration. Ratios still jitter run to
//! run, so comparisons carry a tolerance band (default
//! [`GuardConfig::DEFAULT_TOLERANCE`]).
//!
//! The parser is hand-rolled for the exact JSON shape
//! [`BenchReport::to_json`] emits (the workspace builds fully offline, so
//! there is no serde); unknown sections such as `host` are skipped.

use crate::report::{is_latency_key, BenchReport};

/// Tolerances for [`compare`].
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Maximum allowed relative drop in any speedup ratio present in both
    /// reports: current must be ≥ baseline × (1 − this).
    pub speedup_tolerance: f64,
    /// Speedups the baseline records above 1.0 (i.e. the optimized path
    /// won) must stay above this floor in the current run, regardless of
    /// the tolerance band — catching "the fast path silently became the
    /// slow path" even against a generous baseline.
    pub speedup_floor: f64,
}

impl GuardConfig {
    /// Default tolerance band: single-run medians on shared CI runners
    /// jitter, so a ratio may drop 30% before the guard fails.
    pub const DEFAULT_TOLERANCE: f64 = 0.30;

    /// Default floor for ratios that were wins in the baseline.
    pub const DEFAULT_FLOOR: f64 = 1.0;
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            speedup_tolerance: Self::DEFAULT_TOLERANCE,
            speedup_floor: Self::DEFAULT_FLOOR,
        }
    }
}

/// Parses a [`BenchReport::to_json`] artifact back into a report
/// (medians and speedups; the `host` block is ignored).
///
/// # Errors
///
/// Returns a message naming the malformed line when a section entry is
/// not a `"name": number` pair.
pub fn parse_report(json: &str) -> Result<BenchReport, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Medians,
        Speedups,
        Skip,
    }
    let mut report = BenchReport::new();
    let mut section = Section::None;
    for raw in json.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            continue;
        }
        if let Some(rest) = line.strip_prefix('"') {
            if let Some((key, after)) = rest.split_once('"') {
                let after = after.trim_start();
                if let Some(value) = after.strip_prefix(':') {
                    let value = value.trim();
                    if value.starts_with('{') {
                        section = match key {
                            "medians_ns" => Section::Medians,
                            "speedups" => Section::Speedups,
                            _ => Section::Skip,
                        };
                        // One-line empty section: `"speedups": {}`.
                        if value.contains('}') {
                            section = Section::None;
                        }
                        continue;
                    }
                    match section {
                        Section::None => {
                            return Err(format!("entry outside any section: `{line}`"))
                        }
                        Section::Skip => continue,
                        Section::Medians | Section::Speedups => {
                            let num: f64 = value
                                .parse()
                                .map_err(|_| format!("malformed number in `{line}`"))?;
                            if section == Section::Medians {
                                report.record_median_ns(key, num);
                            } else {
                                report.record_speedup(key, num);
                            }
                            continue;
                        }
                    }
                }
            }
            return Err(format!("malformed entry `{line}`"));
        }
        // A bare `}` closing a section (possibly followed by a comma,
        // already stripped).
        if line == "}" || line.starts_with('}') {
            section = Section::None;
        }
    }
    Ok(report)
}

/// Compares `current` against `baseline`, returning one human-readable
/// message per regression (empty means the guard passes).
///
/// Only keys present in *both* reports are compared — adding or renaming
/// benches never trips the guard. Ordinary medians are reported for
/// context by the `bench_guard` binary but never gate, since they are
/// machine-specific; latency percentiles (`*_p50_ns`/`*_p99_ns` from the
/// serving load generator) gate lower-is-better with the same tolerance
/// band, on the assumption that a baseline carrying latency keys was
/// produced on the same machine class as the current run.
pub fn compare(baseline: &BenchReport, current: &BenchReport, config: GuardConfig) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base) in baseline.speedups() {
        let Some(cur) = current.speedup_of(name) else {
            continue;
        };
        let allowed = base * (1.0 - config.speedup_tolerance);
        if cur < allowed {
            failures.push(format!(
                "speedup `{name}` regressed: {cur:.3}x vs baseline {base:.3}x \
                 (allowed ≥ {allowed:.3}x with {:.0}% tolerance)",
                config.speedup_tolerance * 100.0
            ));
        } else if *base >= 1.0 && cur < config.speedup_floor {
            failures.push(format!(
                "speedup `{name}` fell below the floor: {cur:.3}x < {:.3}x \
                 (baseline {base:.3}x was a win; the optimized path lost to its fallback)",
                config.speedup_floor
            ));
        }
    }
    for (name, base) in baseline.medians() {
        if !is_latency_key(name) || *base == 0.0 {
            continue;
        }
        let Some(cur) = current.median_ns(name) else {
            continue;
        };
        let allowed = base * (1.0 + config.speedup_tolerance);
        if cur > allowed {
            failures.push(format!(
                "latency `{name}` regressed: {cur:.1} ns vs baseline {base:.1} ns \
                 (allowed ≤ {allowed:.1} ns with {:.0}% tolerance)",
                config.speedup_tolerance * 100.0
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::HostInfo;

    fn report(speedups: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new();
        r.record_median_ns("some_bench", 123.4);
        for (name, ratio) in speedups {
            r.record_speedup(*name, *ratio);
        }
        r
    }

    #[test]
    fn round_trips_through_json() {
        let mut r = report(&[("wide_vs_scalar", 2.5), ("threaded_vs_interp", 1.4)]);
        r.set_host(HostInfo {
            cpu_model: "Test".into(),
            features: "sse2".into(),
            cores: 2,
            rustc: "rustc x".into(),
            tier: "sse2".into(),
        });
        let parsed = parse_report(&r.to_json()).expect("parses own output");
        assert_eq!(parsed.median_ns("some_bench"), Some(123.4));
        assert_eq!(parsed.speedup_of("wide_vs_scalar"), Some(2.5));
        assert_eq!(parsed.speedup_of("threaded_vs_interp"), Some(1.4));
        // The host block is provenance, not data — skipped on parse.
        assert!(parsed.host().is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_report("{\n  \"medians_ns\": {\n    \"a\": nope\n  }\n}").is_err());
        assert!(parse_report("\"floating\": 1.0").is_err());
        // Empty sections are fine.
        let r = parse_report("{\n  \"medians_ns\": {},\n  \"speedups\": {}\n}").unwrap();
        assert_eq!(r.median_ns("anything"), None);
    }

    #[test]
    fn matching_reports_pass() {
        let base = report(&[("wide_vs_scalar", 2.0)]);
        let cur = report(&[("wide_vs_scalar", 2.0)]);
        assert!(compare(&base, &cur, GuardConfig::default()).is_empty());
    }

    #[test]
    fn injected_slowdown_fails() {
        // The demonstration required by this PR: cut a 2x win in half
        // (as if the wide path silently fell back to scalar) and the
        // guard must fail.
        let base = report(&[("wide_vs_scalar", 2.0), ("threaded_vs_interp", 1.5)]);
        let slow = report(&[("wide_vs_scalar", 0.9), ("threaded_vs_interp", 1.5)]);
        let failures = compare(&base, &slow, GuardConfig::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("wide_vs_scalar"));
        assert!(failures[0].contains("regressed"));
    }

    #[test]
    fn jitter_within_tolerance_passes_but_floor_still_gates() {
        let base = report(&[("wide_vs_scalar", 1.35)]);
        // 1.35 → 1.05 is a 22% drop: inside the 30% band, above the floor.
        let jitter = report(&[("wide_vs_scalar", 1.05)]);
        assert!(compare(&base, &jitter, GuardConfig::default()).is_empty());
        // 1.35 → 0.97 is still inside the band (allowed ≥ 0.945) but the
        // optimized path now loses to its fallback: the floor catches it.
        let lost = report(&[("wide_vs_scalar", 0.97)]);
        let failures = compare(&base, &lost, GuardConfig::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("floor"));
    }

    #[test]
    fn latency_medians_gate_lower_is_better_but_plain_medians_never_gate() {
        let mut base = report(&[]);
        base.record_median_ns("serve_iiwa14_c4_p99_ns", 90_000.0);
        // `some_bench` (from the helper) is a plain median: tripling it
        // must not gate. A latency key within the band passes too.
        let mut ok = report(&[]);
        ok.record_median_ns("some_bench", 370.2);
        ok.record_median_ns("serve_iiwa14_c4_p99_ns", 100_000.0);
        assert!(compare(&base, &ok, GuardConfig::default()).is_empty());
        // Tail latency doubling is outside the 30% band → one failure.
        let mut slow = report(&[]);
        slow.record_median_ns("serve_iiwa14_c4_p99_ns", 180_000.0);
        let failures = compare(&base, &slow, GuardConfig::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("latency `serve_iiwa14_c4_p99_ns` regressed"));
    }

    #[test]
    fn unmatched_names_never_gate() {
        let base = report(&[("removed_bench", 9.0)]);
        let cur = report(&[("brand_new_bench", 0.1)]);
        assert!(compare(&base, &cur, GuardConfig::default()).is_empty());
    }
}
