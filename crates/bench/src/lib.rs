//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! Each experiment is a function in [`experiments`] returning a rendered
//! report that prints the paper's rows/series next to this reproduction's
//! measured or simulated values. One binary per experiment
//! (`cargo run -p robo-bench --release --bin fig10_single_latency`), plus
//! `all_experiments`, which runs the whole evaluation and emits the
//! markdown used for `EXPERIMENTS.md`. Criterion benches for the hot
//! kernels live under `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod regression;
pub mod report;
