//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! Each experiment is a function in [`experiments`] returning a rendered
//! report that prints the paper's rows/series next to this reproduction's
//! measured or simulated values. One binary per experiment
//! (`cargo run -p robo-bench --release --bin fig10_single_latency`), plus
//! `all_experiments`, which runs the whole evaluation and emits the
//! markdown used for `EXPERIMENTS.md`. Criterion benches for the hot
//! kernels live under `benches/`.
//!
//! The perf-study side lives in three modules: [`harness`] (the
//! `BENCH_QUICK`/`BENCH_TRIALS`/`BENCH_OUT` knobs and shared timing
//! helpers), [`analyse`] (per-key medians with bootstrap confidence
//! intervals and the CI-aware regression gate), and [`regression`] (the
//! single-sample tolerance-band guard the gate falls back to). The
//! `analyse` and `trace_pipeline` binaries drive them.

#![warn(missing_docs)]

pub mod analyse;
pub mod experiments;
pub mod harness;
pub mod regression;
pub mod report;
