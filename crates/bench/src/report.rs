//! Plain-text table rendering for the experiment harness.

use std::fmt::Write as _;

/// A fixed-width text table with a title and optional footnotes, printed by
/// every experiment binary in the style of the paper's tables.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Starts a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Sets the column headers.
    pub fn headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cols);
            for (i, cell) in cells.iter().enumerate() {
                parts.push(format!("{cell:<width$}", width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * cols + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

/// Formats seconds as a microsecond string with two decimals.
pub fn us(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e6)
}

/// Formats a speedup ratio as `N.Nx`.
pub fn speedup(ratio: f64) -> String {
    format!("{ratio:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo").headers(["a", "longer"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| a   | longer |"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x").headers(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(1.5e-6), "1.50");
        assert_eq!(speedup(8.04), "8.0x");
    }
}
