//! Plain-text table rendering for the experiment harness, plus the
//! machine-readable benchmark report consumed by CI.

use std::fmt::Write as _;

pub use robo_trace::HostInfo;

/// A fixed-width text table with a title and optional footnotes, printed by
/// every experiment binary in the style of the paper's tables.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Starts a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Sets the column headers.
    pub fn headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cols);
            for (i, cell) in cells.iter().enumerate() {
                parts.push(format!("{cell:<width$}", width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * cols + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown (title as a
    /// heading, notes as trailing italic lines) — the format the CI
    /// `analyse` report artifact uses.
    pub fn render_markdown(&self) -> String {
        fn cell(s: &str) -> String {
            s.replace('|', "\\|")
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(
            out,
            "| {} |",
            self.headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| " --- ")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(" | ")
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n*{note}*");
        }
        out
    }
}

/// A machine-readable benchmark report: bench name → median nanoseconds,
/// plus named speedup ratios and optional [`HostInfo`] provenance.
/// Serialized as JSON by hand (the workspace builds fully offline, so
/// there is no serde) and uploaded as a CI artifact (`BENCH_5.json`,
/// `BENCH_6.json`) by the bench runners.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    host: Option<HostInfo>,
    medians_ns: Vec<(String, f64)>,
    speedups: Vec<(String, f64)>,
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches host provenance (CPU model, SIMD features, core count,
    /// compiler version, serving tier) to the report.
    pub fn set_host(&mut self, host: HostInfo) -> &mut Self {
        self.host = Some(host);
        self
    }

    /// The attached host provenance, if any.
    pub fn host(&self) -> Option<&HostInfo> {
        self.host.as_ref()
    }

    /// Records one bench's median time (nanoseconds per evaluated item).
    pub fn record_median_ns(&mut self, name: impl Into<String>, median_ns: f64) -> &mut Self {
        self.medians_ns.push((name.into(), median_ns));
        self
    }

    /// Records a named speedup ratio (e.g. lane path over scalar path).
    pub fn record_speedup(&mut self, name: impl Into<String>, ratio: f64) -> &mut Self {
        self.speedups.push((name.into(), ratio));
        self
    }

    /// Looks up a recorded median by name.
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.medians_ns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a recorded speedup by name.
    pub fn speedup_of(&self, name: &str) -> Option<f64> {
        self.speedups
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// All recorded medians, in insertion order.
    pub fn medians(&self) -> impl Iterator<Item = &(String, f64)> {
        self.medians_ns.iter()
    }

    /// All recorded speedups, in insertion order.
    pub fn speedups(&self) -> impl Iterator<Item = &(String, f64)> {
        self.speedups.iter()
    }

    /// Renders the report as a JSON object:
    /// `{"host": {...}, "medians_ns": {name: ns, ...},
    /// "speedups": {name: ratio, ...}}` (the `host` field is present only
    /// when [`BenchReport::set_host`] was called).
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn object(entries: &[(String, f64)]) -> String {
            let fields: Vec<String> = entries
                .iter()
                .map(|(k, v)| format!("    \"{}\": {:.3}", escape(k), v))
                .collect();
            if fields.is_empty() {
                "{}".to_string()
            } else {
                format!("{{\n{}\n  }}", fields.join(",\n"))
            }
        }
        let host = match &self.host {
            None => String::new(),
            Some(h) => format!(
                "  \"host\": {{\n    \"cpu_model\": \"{}\",\n    \"features\": \"{}\",\n    \"cores\": {},\n    \"rustc\": \"{}\",\n    \"tier\": \"{}\"\n  }},\n",
                escape(&h.cpu_model),
                escape(&h.features),
                h.cores,
                escape(&h.rustc),
                escape(&h.tier),
            ),
        };
        format!(
            "{{\n{host}  \"medians_ns\": {},\n  \"speedups\": {}\n}}\n",
            object(&self.medians_ns),
            object(&self.speedups),
        )
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be written.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Suffix convention for 50th-percentile latency medians recorded by the
/// serving load generator (`load_serve`): `<sweep_point>_p50_ns`.
pub const LATENCY_P50_SUFFIX: &str = "_p50_ns";

/// Suffix convention for 99th-percentile (tail) latency medians:
/// `<sweep_point>_p99_ns`.
pub const LATENCY_P99_SUFFIX: &str = "_p99_ns";

/// Whether a `medians_ns` key is a latency percentile from the serving
/// load generator. Latency keys render in their own p50/p99 table and
/// gate lower-is-better, unlike throughput medians.
pub fn is_latency_key(name: &str) -> bool {
    name.ends_with(LATENCY_P50_SUFFIX) || name.ends_with(LATENCY_P99_SUFFIX)
}

/// Strips the latency-percentile suffix from a key, if it has one,
/// returning the sweep-point stem (e.g. `serve_iiwa14_c4` from
/// `serve_iiwa14_c4_p99_ns`).
pub fn latency_stem(name: &str) -> Option<&str> {
    name.strip_suffix(LATENCY_P50_SUFFIX)
        .or_else(|| name.strip_suffix(LATENCY_P99_SUFFIX))
}

/// The median of a sample set (averaging the middle pair for even sizes).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("comparable samples"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        0.5 * (samples[mid - 1] + samples[mid])
    }
}

/// Formats seconds as a microsecond string with two decimals.
pub fn us(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e6)
}

/// Formats a speedup ratio as `N.Nx`.
pub fn speedup(ratio: f64) -> String {
    format!("{ratio:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo").headers(["a", "longer"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| a   | longer |"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn renders_markdown_table() {
        let mut t = Table::new("demo").headers(["a", "b|c"]);
        t.row(["1", "2"]);
        t.note("a note");
        let md = t.render_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | b\\|c |"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("*a note*"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x").headers(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(1.5e-6), "1.50");
        assert_eq!(speedup(8.04), "8.0x");
    }

    #[test]
    fn median_odd_even_and_order() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn bench_report_json_shape() {
        let mut r = BenchReport::new();
        r.record_median_ns("tape_scalar", 1234.5678);
        r.record_median_ns("tape_lanes4", 400.0);
        r.record_speedup("tape_lanes4_vs_scalar", 3.086);
        let json = r.to_json();
        assert!(json.contains("\"medians_ns\""));
        assert!(json.contains("\"tape_scalar\": 1234.568"));
        assert!(json.contains("\"speedups\""));
        assert!(json.contains("\"tape_lanes4_vs_scalar\": 3.086"));
        assert_eq!(r.median_ns("tape_lanes4"), Some(400.0));
        assert_eq!(r.speedup_of("missing"), None);
    }

    #[test]
    fn bench_report_host_block() {
        let mut r = BenchReport::new();
        r.record_median_ns("x", 1.0);
        assert!(!r.to_json().contains("\"host\""));
        r.set_host(HostInfo {
            cpu_model: "Test CPU".to_owned(),
            features: "sse2,avx2".to_owned(),
            cores: 4,
            rustc: "rustc 1.0.0".to_owned(),
            tier: "avx2".to_owned(),
        });
        let json = r.to_json();
        assert!(json.contains("\"host\""));
        assert!(json.contains("\"cpu_model\": \"Test CPU\""));
        assert!(json.contains("\"cores\": 4"));
        assert!(json.contains("\"tier\": \"avx2\""));
        // The medians/speedups sections keep their shape alongside host.
        assert!(json.contains("\"medians_ns\""));
        assert!(json.contains("\"speedups\""));
    }

    #[test]
    fn latency_key_convention() {
        assert!(is_latency_key("serve_iiwa14_c4_p50_ns"));
        assert!(is_latency_key("serve_iiwa14_c4_p99_ns"));
        assert!(!is_latency_key("tape_native"));
        assert!(!is_latency_key("serve_iiwa14_c4_p95_ns"));
        assert_eq!(
            latency_stem("serve_iiwa14_c4_p50_ns"),
            Some("serve_iiwa14_c4")
        );
        assert_eq!(
            latency_stem("serve_iiwa14_c4_p99_ns"),
            Some("serve_iiwa14_c4")
        );
        assert_eq!(latency_stem("tape_native"), None);
    }

    #[test]
    fn bench_report_escapes_names() {
        let mut r = BenchReport::new();
        r.record_median_ns("quote\"back\\slash", 1.0);
        let json = r.to_json();
        assert!(json.contains("quote\\\"back\\\\slash"));
    }
}
