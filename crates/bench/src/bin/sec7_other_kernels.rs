//! Regenerates the §7 other-kernels comparison (see DESIGN.md).
fn main() {
    print!("{}", robo_bench::experiments::sec7_other_kernels());
}
