//! End-to-end pipeline trace recorder: runs the whole serving stack for
//! the iiwa full-pipeline tape with the `robo-trace` collector installed
//! and writes the Chrome-trace JSON (open in Perfetto / `about:tracing`).
//!
//! ```text
//! trace_pipeline [--out <trace.json>] [--tier auto|portable|sse2|avx2|neon|jit]
//! ```
//!
//! The run covers every instrumented stage: plan build
//! (`plan.build`/`plan.customize`/`plan.widen`/`plan.model`/
//! `plan.sparsity`), netlist optimization (`netlist.optimize`), tape
//! compilation (`tape.compile`/`tape.lower`/`tape.fuse`/`tape.schedule`),
//! tiered batch evaluation (`tape.eval`), the wide gradient backends
//! (`lane.marshal`/`grad.wide`/`accel.wide`/`lane.scatter`,
//! `grad.cpu.batch`/`grad.accel.batch`), thread fan-out
//! (`batch.fanout`/`batch.worker`), and a short iLQR solve
//! (`ilqr.backward`/`ilqr.forward`).
//!
//! Build with the recording path compiled in:
//! `cargo run --release -p robo-bench --features trace --bin trace_pipeline`.
//! Prints the per-span breakdown table and fails (exit 1) when fewer than
//! [`MIN_SPAN_KINDS`] distinct span kinds were recorded — the structural
//! check CI relies on. Exit 2 is a usage/environment error (e.g. the
//! `trace` feature was not enabled at build time).

use robo_bench::analyse::trace_table;
use robo_bench::harness::gradient_cases;
use robo_codegen::{generate_x_pipeline, optimize, CompiledNetlist};
use robo_dynamics::batch::{BatchEngine, GradientState};
use robo_dynamics::engine::{GradientBackend, GradientBatchOutput};
use robo_model::robots;
use robo_sim::engine::RobotPlan;
use robo_sparsity::superposition_pattern;
use robo_spatial::ExecTier;
use robo_trace::HostInfo;
use robo_trajopt::{solve_with_backend, IlqrOptions, ReachingTask};

/// The acceptance floor: distinct span kinds one pipeline run must record.
const MIN_SPAN_KINDS: usize = 7;

fn fail(msg: &str) -> ! {
    eprintln!("trace_pipeline: {msg}");
    std::process::exit(2);
}

fn parse_tier(s: &str) -> ExecTier {
    s.parse()
        .unwrap_or_else(|e: robo_spatial::ParseTierError| fail(&e.to_string()))
}

/// The traced workload. Sized so a full run stays under a second while
/// every stage appears several times in the trace.
fn run_pipeline(tier: ExecTier) -> (usize, usize) {
    let batch = 64;
    let robot = robots::iiwa14();

    // Plan build: customize → widen → model → sparsity.
    let plan = RobotPlan::with_tier(&robot, tier);

    // Netlist → optimized → compiled tape (lower/fuse/schedule).
    let sup = superposition_pattern(&robot);
    let tape = CompiledNetlist::<f64>::compile(&optimize(&generate_x_pipeline(&robot, sup)));

    // Tiered batch evaluation of the tape.
    let states = robo_bench::harness::tape_states(batch, tape.input_names().len());
    let state_refs: Vec<&[f64]> = states.iter().map(|s| s.as_slice()).collect();
    let mut ws = tape.tiered_workspace(tier);
    let mut out_flat = vec![0.0_f64; batch * tape.num_outputs()];
    for _ in 0..3 {
        ws.eval_batch_into(&tape, &state_refs, &mut out_flat);
    }

    // Wide gradient backends: CPU analytic and the simulated accelerator.
    let cases = gradient_cases(plan.model(), 12);
    let grad_states: Vec<GradientState<'_, f64>> = cases
        .iter()
        .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
        .collect();
    let mut batch_out = GradientBatchOutput::new();
    let mut cpu = plan.cpu_backend();
    cpu.gradient_batch_into(&grad_states, &mut batch_out)
        .expect("dimensions match");
    let mut accel = plan.accelerator_backend();
    accel
        .gradient_batch_into(&grad_states, &mut batch_out)
        .expect("dimensions match");

    // Thread fan-out through the shared engine.
    cpu.gradient_batch_on_into(BatchEngine::global(), &grad_states, &mut batch_out)
        .expect("dimensions match");

    // A short iLQR solve: backward + forward passes per iteration.
    let task = ReachingTask::iiwa_reach();
    let opts = IlqrOptions {
        iterations: 2,
        ..IlqrOptions::default()
    };
    let result = solve_with_backend(&task, &opts, &cpu);
    (tape.num_outputs(), result.costs.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "TRACE_pipeline.json".to_owned();
    let mut tier = ExecTier::detect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .unwrap_or_else(|| fail("--out needs a path"))
                    .clone();
            }
            "--tier" => {
                i += 1;
                tier = parse_tier(args.get(i).unwrap_or_else(|| fail("--tier needs a value")));
            }
            other => fail(&format!(
                "unknown argument `{other}`\nusage: trace_pipeline [--out <trace.json>] \
                 [--tier auto|portable|sse2|avx2|neon|jit]"
            )),
        }
        i += 1;
    }
    let tier = tier.clamp_to_host();

    if !robo_trace::install() {
        fail(
            "the trace collector is unavailable — rebuild with the recording path \
             compiled in: cargo run --release -p robo-bench --features trace --bin trace_pipeline",
        );
    }
    run_pipeline(tier);
    let mut trace = robo_trace::take().unwrap_or_else(|| fail("collector produced no trace"));

    trace.meta.extend(HostInfo::detect().trace_meta());
    trace
        .meta
        .push(("workload".to_owned(), "iiwa14 full pipeline".to_owned()));
    trace.meta.push(("tier".to_owned(), tier.to_string()));

    let kinds = trace.span_kinds();
    print!(
        "{}",
        trace_table(
            std::slice::from_ref(&trace),
            &format!("trace_pipeline: iiwa14, tier {tier}"),
        )
        .render()
    );
    println!(
        "trace_pipeline: {} events across {} span kinds on {} thread(s)",
        trace.events.len(),
        kinds.len(),
        trace.threads.len().max(1)
    );

    trace
        .write_chrome(&out)
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!("wrote {out}");

    if kinds.len() < MIN_SPAN_KINDS {
        eprintln!(
            "trace_pipeline: FAIL: only {} span kinds recorded (need ≥ {MIN_SPAN_KINDS}): {:?}",
            kinds.len(),
            kinds
        );
        std::process::exit(1);
    }
}
