//! Regenerates the paper's `fig15_projected_rates` experiment (see DESIGN.md §4).
//!
//! Pass `--quick` for a reduced-trial run.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", robo_bench::experiments::fig15_projected_rates(quick));
}
