//! Regenerates the paper's `fig13_roundtrip` experiment (see DESIGN.md §4).
//!
//! Pass `--quick` for a reduced-trial run.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", robo_bench::experiments::fig13_roundtrip(quick));
}
