//! Regenerates the paper's `table1_platforms` experiment (see DESIGN.md §4).
fn main() {
    print!("{}", robo_bench::experiments::table1_platforms());
}
