//! Regenerates the paper's `sec4_sparsity_example` experiment (see DESIGN.md §4).
fn main() {
    print!("{}", robo_bench::experiments::sec4_sparsity_example());
}
