//! Regenerates the paper's `fig14_asic_latency` experiment (see DESIGN.md §4).
fn main() {
    print!("{}", robo_bench::experiments::fig14_asic_latency());
}
