//! Regenerates the `codegen_stats` experiment (see DESIGN.md §4/§5).
fn main() {
    print!("{}", robo_bench::experiments::codegen_stats());
}
