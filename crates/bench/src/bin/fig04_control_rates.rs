//! Regenerates the paper's `fig04_control_rates` experiment (see DESIGN.md §4).
//!
//! Pass `--quick` for a reduced-trial run.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", robo_bench::experiments::fig04_control_rates(quick));
}
