//! Regenerates the §6.4 system-on-chip projection (see DESIGN.md).
fn main() {
    print!("{}", robo_bench::experiments::sec64_soc());
}
