//! Regenerates the paper's `sec7_other_robots` experiment (see DESIGN.md §4).
fn main() {
    print!("{}", robo_bench::experiments::sec7_other_robots());
}
