//! Regenerates the §8 workload-characterization analysis (see DESIGN.md).
fn main() {
    print!("{}", robo_bench::experiments::sec8_workload());
}
