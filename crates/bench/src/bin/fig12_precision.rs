//! Regenerates the paper's `fig12_precision` experiment (see DESIGN.md §4).
//!
//! Pass `--quick` for a reduced-trial run.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", robo_bench::experiments::fig12_precision(quick));
}
