//! Regenerates the paper's `fig11_sparsity_ops` experiment (see DESIGN.md §4).
fn main() {
    print!("{}", robo_bench::experiments::fig11_sparsity_ops());
}
