//! CI bench-regression guard.
//!
//! ```text
//! bench_guard <baseline.json> <current.json> [--tolerance T]
//! ```
//!
//! Compares the machine-relative speedup ratios of `current` against the
//! committed `baseline` (see `robo_bench::regression` for the policy) and
//! exits nonzero listing every regression. Medians are printed for
//! context but never gate — they are machine-specific.

use robo_bench::regression::{compare, parse_report, GuardConfig};

fn fail(msg: &str) -> ! {
    eprintln!("bench_guard: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> robo_bench::report::BenchReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    parse_report(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = GuardConfig::default();
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let t = args
                    .get(i)
                    .unwrap_or_else(|| fail("--tolerance needs a value"));
                config.speedup_tolerance = t
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad tolerance `{t}`")));
            }
            p => paths.push(p.to_owned()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        fail("usage: bench_guard <baseline.json> <current.json> [--tolerance T]");
    };

    let baseline = load(baseline_path);
    let current = load(current_path);

    println!("bench_guard: {current_path} vs baseline {baseline_path}");
    for (name, ns) in current.medians() {
        let delta = baseline
            .median_ns(name)
            .map(|b| format!(" (baseline {b:.1} ns — context only, not gated)"))
            .unwrap_or_default();
        println!("  median  {name:<24} {ns:10.1} ns{delta}");
    }
    for (name, ratio) in current.speedups() {
        let delta = baseline
            .speedup_of(name)
            .map(|b| format!(" (baseline {b:.3}x)"))
            .unwrap_or_default();
        println!("  speedup {name:<24} {ratio:10.3}x{delta}");
    }

    let failures = compare(&baseline, &current, config);
    if failures.is_empty() {
        println!(
            "bench_guard: ok ({:.0}% tolerance band)",
            config.speedup_tolerance * 100.0
        );
    } else {
        for f in &failures {
            eprintln!("bench_guard: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
