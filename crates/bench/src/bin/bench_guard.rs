//! CI bench-regression guard.
//!
//! ```text
//! bench_guard <baseline.json> <current.json> [--tolerance T]
//! bench_guard <baseline-dir> [current-dir] [--tolerance T]
//! ```
//!
//! Compares the machine-relative speedup ratios of `current` against the
//! committed `baseline` (see `robo_bench::regression` for the policy) and
//! exits nonzero listing every regression. Medians are printed for
//! context but never gate — they are machine-specific.
//!
//! When the first path is a directory, every `bench_baseline_<id>.json`
//! inside it is checked against `BENCH_<id>.json` in the current
//! directory argument (default `.`) in one invocation — the shape CI
//! uses: `bench_guard ci`.
//!
//! For multi-trial runs with confidence intervals, see the `analyse`
//! binary, which subsumes this single-sample band check.

use robo_bench::regression::{compare, parse_report, GuardConfig};
use std::path::{Path, PathBuf};

fn fail(msg: &str) -> ! {
    eprintln!("bench_guard: {msg}");
    std::process::exit(2);
}

fn load(path: &Path) -> robo_bench::report::BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    parse_report(&text).unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", path.display())))
}

/// Pairs every `bench_baseline_<id>.json` under `dir` with
/// `<current_dir>/BENCH_<id>.json`.
fn pair_directory(dir: &Path, current_dir: &Path) -> Vec<(PathBuf, PathBuf)> {
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| fail(&format!("cannot read dir {}: {e}", dir.display())));
    let mut pairs = Vec::new();
    for entry in entries {
        let entry = entry.unwrap_or_else(|e| fail(&format!("cannot list {}: {e}", dir.display())));
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(id) = name
            .strip_prefix("bench_baseline_")
            .and_then(|r| r.strip_suffix(".json"))
        else {
            continue;
        };
        pairs.push((entry.path(), current_dir.join(format!("BENCH_{id}.json"))));
    }
    pairs.sort();
    if pairs.is_empty() {
        fail(&format!(
            "no bench_baseline_*.json files in {}",
            dir.display()
        ));
    }
    pairs
}

/// Prints the comparison and returns its regression messages.
fn guard_pair(baseline_path: &Path, current_path: &Path, config: GuardConfig) -> Vec<String> {
    let baseline = load(baseline_path);
    let current = load(current_path);

    println!(
        "bench_guard: {} vs baseline {}",
        current_path.display(),
        baseline_path.display()
    );
    for (name, ns) in current.medians() {
        let delta = baseline
            .median_ns(name)
            .map(|b| format!(" (baseline {b:.1} ns — context only, not gated)"))
            .unwrap_or_default();
        println!("  median  {name:<24} {ns:10.1} ns{delta}");
    }
    for (name, ratio) in current.speedups() {
        let delta = baseline
            .speedup_of(name)
            .map(|b| format!(" (baseline {b:.3}x)"))
            .unwrap_or_default();
        println!("  speedup {name:<24} {ratio:10.3}x{delta}");
    }
    compare(&baseline, &current, config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = GuardConfig::default();
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let t = args
                    .get(i)
                    .unwrap_or_else(|| fail("--tolerance needs a value"));
                config.speedup_tolerance = t
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad tolerance `{t}`")));
            }
            p => paths.push(PathBuf::from(p)),
        }
        i += 1;
    }

    let pairs = match paths.as_slice() {
        [dir] if dir.is_dir() => pair_directory(dir, Path::new(".")),
        [dir, current_dir] if dir.is_dir() => pair_directory(dir, current_dir),
        [baseline, current] => vec![(baseline.clone(), current.clone())],
        _ => fail(
            "usage: bench_guard <baseline.json> <current.json> [--tolerance T]\n\
             \x20      bench_guard <baseline-dir> [current-dir] [--tolerance T]",
        ),
    };

    let mut failures = Vec::new();
    for (baseline_path, current_path) in &pairs {
        failures.extend(guard_pair(baseline_path, current_path, config));
    }
    if failures.is_empty() {
        println!(
            "bench_guard: ok — {} report(s) within the {:.0}% tolerance band",
            pairs.len(),
            config.speedup_tolerance * 100.0
        );
    } else {
        for f in &failures {
            eprintln!("bench_guard: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
