//! Runs the entire evaluation — every table and figure — and prints the
//! combined report (the source for `EXPERIMENTS.md`).
//!
//! Pass `--quick` for a reduced-trial run.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for (name, report) in robo_bench::experiments::all(quick) {
        println!("### {name}\n");
        println!("```text\n{}```\n", report);
    }
}
