//! Regenerates the paper's `fig10_single_latency` experiment (see DESIGN.md §4).
//!
//! Pass `--quick` for a reduced-trial run.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", robo_bench::experiments::fig10_single_latency(quick));
}
