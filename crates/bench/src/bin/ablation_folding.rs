//! Regenerates the paper's `ablation_folding` experiment (see DESIGN.md §4).
fn main() {
    print!("{}", robo_bench::experiments::ablation_folding());
}
