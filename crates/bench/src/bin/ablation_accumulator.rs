//! Regenerates the `ablation_accumulator` experiment (see DESIGN.md §4/§5).
fn main() {
    print!("{}", robo_bench::experiments::ablation_accumulator());
}
