//! Perf-study analyser: per-key medians with bootstrap confidence
//! intervals over N trial files, rendered as a report table and usable as
//! the CI regression gate.
//!
//! ```text
//! analyse report <file...> [--markdown <out.md>] [--title <t>]
//! analyse gate --baseline <baseline.json> <trial.json...>
//!         [--gate speedups|medians|both] [--tolerance T]
//!         [--ci-slack S] [--min-trials N]
//! ```
//!
//! Input files are auto-detected by content: Chrome-trace JSON (the
//! `robo-trace` output, keyed by span kind) or `BenchReport` JSON
//! (`BENCH_*.json`, keyed by bench name and speedup ratio). `report`
//! prints the median/CI tables — and writes them as markdown when
//! `--markdown` is given (the CI artifact). Serving latency percentiles
//! (`*_p50_ns`/`*_p99_ns` medians from `load_serve`) render as their own
//! paired p50/p99 table, in µs, lower is better. `gate` compares bench trials
//! against a committed baseline with the policy in
//! [`robo_bench::analyse`]: with ≥ `--min-trials` trials per key, the
//! bootstrap-CI overlap rule; below that, `bench_guard`'s fixed
//! tolerance band. `--gate medians` switches to lower-is-better median
//! gating — only meaningful same-machine, e.g. CI's disabled-vs-absent
//! tracing-overhead check, which runs both variants in one job and
//! gates with a generous `--tolerance 0.5`.
//!
//! Exit codes: 0 ok, 1 regression, 2 usage or I/O error.

use robo_bench::analyse::{
    bench_table, gate_medians, gate_speedups, latency_table, trace_table, GateConfig,
};
use robo_bench::regression::parse_report;
use robo_bench::report::BenchReport;
use robo_trace::Trace;
use std::path::Path;

fn fail(msg: &str) -> ! {
    eprintln!("analyse: {msg}");
    std::process::exit(2);
}

const USAGE: &str = "usage: analyse report <file...> [--markdown <out.md>] [--title <t>]\n\
                     \x20      analyse gate --baseline <baseline.json> <trial.json...>\n\
                     \x20              [--gate speedups|medians|both] [--tolerance T]\n\
                     \x20              [--ci-slack S] [--min-trials N]";

/// One parsed input file.
enum Input {
    Bench(BenchReport),
    Trace(Trace),
}

fn load(path: &str) -> Input {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    if text.contains("\"traceEvents\"") {
        Input::Trace(
            Trace::parse_chrome(&text)
                .unwrap_or_else(|e| fail(&format!("cannot parse trace {path}: {e}"))),
        )
    } else {
        Input::Bench(
            parse_report(&text)
                .unwrap_or_else(|e| fail(&format!("cannot parse report {path}: {e}"))),
        )
    }
}

fn split(paths: &[String]) -> (Vec<BenchReport>, Vec<Trace>) {
    let mut benches = Vec::new();
    let mut traces = Vec::new();
    for p in paths {
        match load(p) {
            Input::Bench(b) => benches.push(b),
            Input::Trace(t) => traces.push(t),
        }
    }
    (benches, traces)
}

fn cmd_report(args: &[String]) {
    let mut paths = Vec::new();
    let mut markdown: Option<String> = None;
    let mut title = "perf study".to_owned();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--markdown" => {
                i += 1;
                markdown = Some(
                    args.get(i)
                        .unwrap_or_else(|| fail("--markdown needs a path"))
                        .clone(),
                );
            }
            "--title" => {
                i += 1;
                title = args
                    .get(i)
                    .unwrap_or_else(|| fail("--title needs a value"))
                    .clone();
            }
            p => paths.push(p.to_owned()),
        }
        i += 1;
    }
    if paths.is_empty() {
        fail(USAGE);
    }
    let (benches, traces) = split(&paths);
    let mut tables = Vec::new();
    if !benches.is_empty() {
        tables.push(bench_table(&benches, &format!("{title}: bench medians")));
        if let Some(lat) = latency_table(&benches, &format!("{title}: serving latency")) {
            tables.push(lat);
        }
    }
    if !traces.is_empty() {
        tables.push(trace_table(&traces, &format!("{title}: span breakdown")));
    }
    for t in &tables {
        print!("{}", t.render());
    }
    if let Some(out) = markdown {
        let md: String = tables.iter().map(|t| t.render_markdown() + "\n").collect();
        std::fs::write(Path::new(&out), md)
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        println!("wrote {out}");
    }
}

fn cmd_gate(args: &[String]) {
    let mut baseline: Option<String> = None;
    let mut trials = Vec::new();
    let mut config = GateConfig::default();
    let mut which = "speedups".to_owned();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize, name: &str| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match args[i].as_str() {
            "--baseline" => baseline = Some(flag_value(&mut i, "--baseline")),
            "--gate" => {
                which = flag_value(&mut i, "--gate");
                if !matches!(which.as_str(), "speedups" | "medians" | "both") {
                    fail(&format!(
                        "bad --gate mode `{which}` (speedups|medians|both)"
                    ));
                }
            }
            "--tolerance" => {
                let v = flag_value(&mut i, "--tolerance");
                config.band.speedup_tolerance = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad tolerance `{v}`")));
            }
            "--ci-slack" => {
                let v = flag_value(&mut i, "--ci-slack");
                config.ci_slack = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad ci-slack `{v}`")));
            }
            "--min-trials" => {
                let v = flag_value(&mut i, "--min-trials");
                config.min_trials = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad min-trials `{v}`")));
            }
            p => trials.push(p.to_owned()),
        }
        i += 1;
    }
    let Some(baseline_path) = baseline else {
        fail(USAGE);
    };
    if trials.is_empty() {
        fail("gate needs at least one trial file");
    }

    let Input::Bench(base) = load(&baseline_path) else {
        fail(&format!(
            "baseline {baseline_path} is a trace, not a bench report"
        ));
    };
    let (bench_trials, traces) = split(&trials);
    if !traces.is_empty() {
        fail("gate trials must be bench reports, not traces");
    }

    print!(
        "{}",
        bench_table(
            &bench_trials,
            &format!("gate: {} trial(s) vs {baseline_path}", bench_trials.len()),
        )
        .render()
    );

    let mut failures = Vec::new();
    if which == "speedups" || which == "both" {
        failures.extend(gate_speedups(&base, &bench_trials, config));
    }
    if which == "medians" || which == "both" {
        failures.extend(gate_medians(&base, &bench_trials, config));
    }
    if failures.is_empty() {
        println!(
            "analyse: ok — {} gate passed ({} trial(s), CI rule from {} trials, \
             {:.0}% band fallback)",
            which,
            bench_trials.len(),
            config.min_trials,
            config.band.speedup_tolerance * 100.0
        );
    } else {
        for f in &failures {
            eprintln!("analyse: FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "report" => cmd_report(rest),
        Some((cmd, rest)) if cmd == "gate" => cmd_gate(rest),
        _ => fail(USAGE),
    }
}
