//! Regenerates the `sweep_links` experiment (see DESIGN.md §4/§5).
fn main() {
    print!("{}", robo_bench::experiments::sweep_links());
}
