//! Regenerates the paper's `table2_asic` experiment (see DESIGN.md §4).
fn main() {
    print!("{}", robo_bench::experiments::table2_asic());
}
