//! Shared bench-runner plumbing: the `BENCH_*` environment knobs, the
//! timing/workload helpers the throughput benches previously each carried
//! a private copy of, and the multi-trial driver behind the `analyse`
//! regression gate.
//!
//! Environment knobs (all optional):
//!
//! * `BENCH_QUICK` — any value other than `0` shrinks reps and batch
//!   sizes for CI;
//! * `BENCH_TRIALS` — run the whole bench N times, writing
//!   `<out>.trial<t>.json` per trial plus the median-combined `<out>`
//!   (default 1: a single run writing `<out>` only);
//! * `BENCH_OUT` — overrides the output path (CI uses this for the
//!   traced re-run of `tier_throughput`, keeping `BENCH_6.json` for the
//!   untraced baseline).

use crate::analyse::bench_samples;
use crate::report::{median, BenchReport};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The knobs one bench run is parameterized by, resolved from the
/// environment once in [`BenchEnv::from_env`].
#[derive(Debug, Clone, Copy)]
pub struct BenchEnv {
    /// `BENCH_QUICK` was set (CI mode: small reps/batches).
    pub quick: bool,
    /// Number of full bench repetitions (`BENCH_TRIALS`, min 1).
    pub trials: usize,
    /// Timing samples per measurement.
    pub reps: usize,
    /// States per compiled-tape batch.
    pub tape_batch: usize,
    /// States per gradient batch.
    pub grad_batch: usize,
    /// Timing samples for the (slower) gradient measurements.
    pub grad_reps: usize,
}

impl BenchEnv {
    /// Reads `BENCH_QUICK` and `BENCH_TRIALS` and derives the standard
    /// rep/batch sizes both throughput benches use.
    pub fn from_env() -> Self {
        let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
        let trials = std::env::var("BENCH_TRIALS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        let reps = if quick { 15 } else { 120 };
        Self {
            quick,
            trials,
            reps,
            tape_batch: if quick { 64 } else { 512 },
            grad_batch: if quick { 12 } else { 48 },
            grad_reps: reps.min(if quick { 10 } else { 60 }),
        }
    }
}

/// Median nanoseconds per item: `reps` samples, each timing one call of
/// `f` that processes `items_per_run` items.
pub fn time_median_ns(reps: usize, items_per_run: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page in code, size workspaces
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64() * 1e9 / items_per_run as f64);
    }
    median(&mut samples)
}

/// Like [`time_median_ns`], but interleaves several alternatives
/// round-robin inside one rep loop, so slow-machine drift (frequency
/// scaling, noisy-neighbor preemption on shared CI runners) biases every
/// alternative equally instead of whichever one happened to be measured
/// during the disturbance. Use for A/B speedup ratios whose sweeps are
/// long enough that back-to-back whole-path measurements can land in
/// different machine regimes. Returns one median ns/item per
/// alternative, in input order.
pub fn time_median_ns_interleaved(
    reps: usize,
    items_per_run: usize,
    alternatives: &mut [&mut dyn FnMut()],
) -> Vec<f64> {
    for f in alternatives.iter_mut() {
        f(); // warm-up: page in code, size workspaces
    }
    let mut samples = vec![Vec::with_capacity(reps); alternatives.len()];
    for _ in 0..reps {
        for (k, f) in alternatives.iter_mut().enumerate() {
            let start = Instant::now();
            f();
            samples[k].push(start.elapsed().as_secs_f64() * 1e9 / items_per_run as f64);
        }
    }
    samples.iter_mut().map(|s| median(s)).collect()
}

/// Deterministic pseudo-random input states for a compiled tape.
pub fn tape_states(count: usize, n_inputs: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|u| {
            (0..n_inputs)
                .map(|i| 0.17 * (u * n_inputs + i) as f64 % 1.9 - 0.95)
                .collect()
        })
        .collect()
}

/// Deterministic `(q, qd, qdd, minv)` gradient cases for a dynamics
/// model, with `qdd`/`minv` computed consistently from the state.
#[allow(clippy::type_complexity)]
pub fn gradient_cases(
    model: &robo_dynamics::DynamicsModel<f64>,
    count: usize,
) -> Vec<(Vec<f64>, Vec<f64>, Vec<f64>, robo_spatial::MatN<f64>)> {
    let n = model.dof();
    (0..count)
        .map(|k| {
            let q: Vec<f64> = (0..n).map(|i| 0.1 * (i + k) as f64 % 1.3 - 0.4).collect();
            let qd: Vec<f64> = (0..n).map(|i| 0.05 * i as f64 - 0.02 * k as f64).collect();
            let tau = vec![0.5; n];
            let qdd = robo_dynamics::forward_dynamics(model, &q, &qd, &tau).expect("valid case");
            let minv = robo_dynamics::mass_matrix_inverse(model, &q).expect("valid case");
            (q, qd, qdd, minv)
        })
        .collect()
}

/// Combines N trial reports into one: per-key medians of both the
/// `medians_ns` and `speedups` sections (host provenance from the first
/// trial that carries one).
///
/// # Panics
///
/// Panics if `trials` is empty.
pub fn combine_trials(trials: &[BenchReport]) -> BenchReport {
    assert!(!trials.is_empty(), "combining no trials");
    let (medians, speedups) = bench_samples(trials);
    let mut combined = BenchReport::new();
    if let Some(host) = trials.iter().find_map(|t| t.host()) {
        combined.set_host(host.clone());
    }
    for (name, s) in medians.stats() {
        combined.record_median_ns(name, s.median);
    }
    for (name, s) in speedups.stats() {
        combined.record_speedup(name, s.median);
    }
    combined
}

/// The trial-file path for trial `t` of output `out`:
/// `BENCH_6.json` → `BENCH_6.trial0.json`.
pub fn trial_path(out: &Path, t: usize) -> PathBuf {
    let stem = out.file_stem().and_then(|s| s.to_str()).unwrap_or("bench");
    out.with_file_name(format!("{stem}.trial{t}.json"))
}

/// Resolves the output path: `BENCH_OUT` if set, else `default_out`.
pub fn out_path(default_out: &Path) -> PathBuf {
    std::env::var_os("BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| default_out.to_path_buf())
}

/// Runs `run` once per `BENCH_TRIALS`, writes each trial's report to
/// `<out>.trial<t>.json` when there is more than one, writes the
/// median-combined report to the resolved output path, and returns the
/// per-trial reports.
///
/// # Panics
///
/// Panics if a report file cannot be written (benches treat their output
/// artifact as mandatory).
pub fn run_trials(
    default_out: &Path,
    mut run: impl FnMut(&BenchEnv) -> BenchReport,
) -> Vec<BenchReport> {
    let env = BenchEnv::from_env();
    let out = out_path(default_out);
    let mut reports = Vec::with_capacity(env.trials);
    for t in 0..env.trials {
        if env.trials > 1 {
            println!("--- trial {}/{} ---", t + 1, env.trials);
        }
        let report = run(&env);
        if env.trials > 1 {
            let path = trial_path(&out, t);
            report.write_json(&path).expect("write trial report");
            println!("wrote {}", path.display());
        }
        reports.push(report);
    }
    combine_trials(&reports)
        .write_json(&out)
        .expect("write bench report");
    println!("wrote {}", out.display());
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_paths_keep_directory_and_extension() {
        let p = trial_path(Path::new("/tmp/x/BENCH_6.json"), 2);
        assert_eq!(p, Path::new("/tmp/x/BENCH_6.trial2.json"));
    }

    #[test]
    fn combine_takes_per_key_medians() {
        let mut trials = Vec::new();
        for v in [100.0, 300.0, 200.0] {
            let mut r = BenchReport::new();
            r.record_median_ns("tape", v);
            r.record_speedup("ratio", v / 100.0);
            trials.push(r);
        }
        let combined = combine_trials(&trials);
        assert_eq!(combined.median_ns("tape"), Some(200.0));
        assert_eq!(combined.speedup_of("ratio"), Some(2.0));
    }

    #[test]
    fn deterministic_workloads() {
        assert_eq!(tape_states(3, 5), tape_states(3, 5));
        let model = robo_dynamics::DynamicsModel::<f64>::new(&robo_model::robots::iiwa14());
        let a = gradient_cases(&model, 2);
        let b = gradient_cases(&model, 2);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].0, b[0].0);
        assert_eq!(a[1].2, b[1].2);
    }
}
