//! Q-format fixed-point arithmetic for the robomorphic accelerator.
//!
//! The paper's FPGA datapath computes in **32-bit fixed point with 16
//! fractional bits** (§6.2, Figure 12), because fixed-point multipliers and
//! adders are much smaller than floating-point units. This crate provides
//! [`Fixed<INT, FRAC>`](Fixed), a two's-complement Q-format number with
//! `INT` integer bits (including sign) and `FRAC` fractional bits,
//! implementing the [`Scalar`] trait so that the entire dynamics stack and
//! the simulated accelerator can run in the same arithmetic the hardware
//! uses.
//!
//! Arithmetic **saturates** on overflow (as a hardware datapath with clamp
//! logic would) and increments a global diagnostic counter, so experiments
//! like the paper's Figure 12 can both observe degraded convergence *and*
//! attribute it to range exhaustion.
//!
//! Named types from the paper's Figure 12 sweep are provided as aliases:
//! [`Fix32_16`] (the accelerator's type), [`Fix14_18`], [`Fix18_14`],
//! [`Fix14_6`] (the 20-bit candidate), and [`Fix12_4`].
//!
//! # Example
//!
//! ```
//! use robo_fixed::Fix32_16;
//! use robo_spatial::Scalar;
//!
//! let a = Fix32_16::from_f64(1.5);
//! let b = Fix32_16::from_f64(-2.25);
//! assert_eq!((a * b).to_f64(), -3.375);
//! assert_eq!(Fix32_16::resolution(), 1.0 / 65536.0);
//! ```

#![warn(missing_docs)]

use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};

use robo_spatial::Scalar;

/// Global count of saturation events across all fixed-point operations.
static OVERFLOW_COUNT: AtomicU64 = AtomicU64::new(0);

/// Returns the number of fixed-point saturation events since the last
/// [`reset_overflow_count`].
pub fn overflow_count() -> u64 {
    OVERFLOW_COUNT.load(Ordering::Relaxed)
}

/// Resets the global saturation counter (call before an experiment).
pub fn reset_overflow_count() {
    OVERFLOW_COUNT.store(0, Ordering::Relaxed);
}

/// A two's-complement Q-format fixed-point number with `INT` integer bits
/// (including the sign bit) and `FRAC` fractional bits.
///
/// The representable range is `[-2^(INT-1), 2^(INT-1))` with a resolution of
/// `2^-FRAC`. Total width `INT + FRAC` must be ≤ 63 bits. Values are stored
/// as `i64` raw integers scaled by `2^FRAC`; products are computed in `i128`
/// and rounded to nearest, exactly as a DSP-block multiply pipeline followed
/// by a rounding stage would behave.
///
/// The paper's notation `Fixed{i, f}` maps to `Fixed<i, f>`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Fixed<const INT: u32, const FRAC: u32> {
    raw: i64,
}

/// The accelerator's numeric type: 32 bits, 16 fractional (§6.2).
pub type Fix32_16 = Fixed<16, 16>;
/// 32 bits, 14 integer / 18 fractional (`Fixed{14,18}` in Figure 12).
pub type Fix14_18 = Fixed<14, 18>;
/// 32 bits, 18 integer / 14 fractional (`Fixed{18,14}` in Figure 12).
pub type Fix18_14 = Fixed<18, 14>;
/// 20 bits, 14 integer / 6 fractional — the paper's reduced-width candidate
/// (`Fixed{14,6}`, §6.2: "possible to use 20 bits in future work").
pub type Fix14_6 = Fixed<14, 6>;
/// 16 bits, 12 integer / 4 fractional — below the useful precision floor;
/// included to demonstrate degradation.
pub type Fix12_4 = Fixed<12, 4>;
/// 12 bits, 8 integer / 4 fractional — range ±128 saturates on realistic
/// link forces; included to demonstrate outright divergence.
pub type Fix8_4 = Fixed<8, 4>;

impl<const INT: u32, const FRAC: u32> Fixed<INT, FRAC> {
    /// Total width in bits (integer + fractional).
    pub const WIDTH: u32 = INT + FRAC;

    const RAW_MAX: i64 = (1i64 << (INT + FRAC - 1)) - 1;
    const RAW_MIN: i64 = -(1i64 << (INT + FRAC - 1));

    /// Creates a value from its raw scaled representation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `raw` is outside the representable range.
    pub fn from_raw(raw: i64) -> Self {
        debug_assert!(
            (Self::RAW_MIN..=Self::RAW_MAX).contains(&raw),
            "raw value {raw} outside Q{INT}.{FRAC} range"
        );
        Self { raw }
    }

    /// The raw scaled integer representation (`value · 2^FRAC`).
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// Largest representable value.
    pub fn max_value() -> Self {
        Self { raw: Self::RAW_MAX }
    }

    /// Smallest (most negative) representable value.
    pub fn min_value() -> Self {
        Self { raw: Self::RAW_MIN }
    }

    #[inline]
    fn saturate(wide: i128) -> Self {
        if wide > Self::RAW_MAX as i128 {
            OVERFLOW_COUNT.fetch_add(1, Ordering::Relaxed);
            Self { raw: Self::RAW_MAX }
        } else if wide < Self::RAW_MIN as i128 {
            OVERFLOW_COUNT.fetch_add(1, Ordering::Relaxed);
            Self { raw: Self::RAW_MIN }
        } else {
            Self { raw: wide as i64 }
        }
    }

    /// Rounds an `i128` value carrying `2·FRAC` fractional bits back to
    /// `FRAC` fractional bits, to nearest (ties away from zero).
    #[inline]
    fn round_product(prod: i128) -> i128 {
        let half = 1i128 << (FRAC - 1);
        if prod >= 0 {
            (prod + half) >> FRAC
        } else {
            -((-prod + half) >> FRAC)
        }
    }
}

impl<const INT: u32, const FRAC: u32> Scalar for Fixed<INT, FRAC> {
    fn name() -> String {
        format!("Fixed{{{INT},{FRAC}}}")
    }

    #[inline]
    fn zero() -> Self {
        Self { raw: 0 }
    }

    #[inline]
    fn one() -> Self {
        Self::saturate(1i128 << FRAC)
    }

    fn from_f64(value: f64) -> Self {
        if !value.is_finite() {
            OVERFLOW_COUNT.fetch_add(1, Ordering::Relaxed);
            return if value > 0.0 {
                Self::max_value()
            } else {
                Self::min_value()
            };
        }
        let scaled = (value * (1u64 << FRAC) as f64).round();
        Self::saturate(scaled as i128)
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self.raw as f64 / (1u64 << FRAC) as f64
    }

    fn resolution() -> f64 {
        1.0 / (1u64 << FRAC) as f64
    }

    fn dot_accumulate_from(terms: impl Iterator<Item = (Self, Self)>) -> Self {
        // DSP-cascade behavior: accumulate the full 2·FRAC-bit products in
        // a wide register, round once at the end.
        let mut acc: i128 = 0;
        for (a, b) in terms {
            acc += a.raw as i128 * b.raw as i128;
        }
        Self::saturate(Self::round_product(acc))
    }
}

impl<const INT: u32, const FRAC: u32> Add for Fixed<INT, FRAC> {
    type Output = Self;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::saturate(self.raw as i128 + rhs.raw as i128)
    }
}

impl<const INT: u32, const FRAC: u32> Sub for Fixed<INT, FRAC> {
    type Output = Self;

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::saturate(self.raw as i128 - rhs.raw as i128)
    }
}

impl<const INT: u32, const FRAC: u32> Mul for Fixed<INT, FRAC> {
    type Output = Self;

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let prod = self.raw as i128 * rhs.raw as i128;
        Self::saturate(Self::round_product(prod))
    }
}

impl<const INT: u32, const FRAC: u32> Div for Fixed<INT, FRAC> {
    type Output = Self;

    #[inline]
    fn div(self, rhs: Self) -> Self {
        if rhs.raw == 0 {
            OVERFLOW_COUNT.fetch_add(1, Ordering::Relaxed);
            return if self.raw >= 0 {
                Self::max_value()
            } else {
                Self::min_value()
            };
        }
        let num = (self.raw as i128) << FRAC;
        Self::saturate(num / rhs.raw as i128)
    }
}

impl<const INT: u32, const FRAC: u32> Neg for Fixed<INT, FRAC> {
    type Output = Self;

    #[inline]
    fn neg(self) -> Self {
        Self::saturate(-(self.raw as i128))
    }
}

impl<const INT: u32, const FRAC: u32> AddAssign for Fixed<INT, FRAC> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const INT: u32, const FRAC: u32> SubAssign for Fixed<INT, FRAC> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const INT: u32, const FRAC: u32> MulAssign for Fixed<INT, FRAC> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const INT: u32, const FRAC: u32> DivAssign for Fixed<INT, FRAC> {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<const INT: u32, const FRAC: u32> fmt::Debug for Fixed<INT, FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed<{INT},{FRAC}>({})", self.to_f64())
    }
}

impl<const INT: u32, const FRAC: u32> fmt::Display for Fixed<INT, FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_values() {
        for v in [0.0, 1.0, -1.0, 0.5, -0.25, 100.0, -255.75] {
            assert_eq!(Fix32_16::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn basic_arithmetic() {
        let a = Fix32_16::from_f64(3.5);
        let b = Fix32_16::from_f64(-1.25);
        assert_eq!((a + b).to_f64(), 2.25);
        assert_eq!((a - b).to_f64(), 4.75);
        assert_eq!((a * b).to_f64(), -4.375);
        // Division truncates toward zero in raw units: -2.8 is not exactly
        // representable in Q16.16.
        assert!(((a / b).to_f64() + 2.8).abs() <= Fix32_16::resolution());
        assert_eq!((-a).to_f64(), -3.5);
    }

    #[test]
    fn identity_elements() {
        assert_eq!(Fix32_16::zero().to_f64(), 0.0);
        assert_eq!(Fix32_16::one().to_f64(), 1.0);
        let a = Fix32_16::from_f64(7.75);
        assert_eq!(a * Fix32_16::one(), a);
        assert_eq!(a + Fix32_16::zero(), a);
    }

    #[test]
    fn resolution_and_rounding() {
        assert_eq!(Fix32_16::resolution(), 2.0_f64.powi(-16));
        // 1/3 rounds to the nearest representable value.
        let third = Fix32_16::from_f64(1.0 / 3.0);
        assert!((third.to_f64() - 1.0 / 3.0).abs() <= Fix32_16::resolution() / 2.0);
    }

    #[test]
    fn multiplication_rounds_to_nearest() {
        // resolution · 0.5 rounds away from zero.
        let eps = Fix32_16::from_raw(1);
        let half = Fix32_16::from_f64(0.5);
        assert_eq!((eps * half).raw(), 1);
        assert_eq!(((-eps) * half).raw(), -1);
    }

    #[test]
    fn saturation_on_overflow() {
        reset_overflow_count();
        let big = Fix32_16::from_f64(30000.0);
        let sum = big + big;
        assert_eq!(sum, Fix32_16::max_value());
        assert!(overflow_count() > 0);

        let neg = Fix32_16::from_f64(-30000.0) + Fix32_16::from_f64(-30000.0);
        assert_eq!(neg, Fix32_16::min_value());
    }

    #[test]
    fn narrow_type_has_small_range() {
        // Fixed{12,4}: range [-2048, 2048), resolution 1/16.
        assert_eq!(Fix12_4::resolution(), 0.0625);
        assert_eq!(Fix12_4::from_f64(5000.0), Fix12_4::max_value());
        assert!((Fix12_4::max_value().to_f64() - 2048.0).abs() < 1.0);
    }

    #[test]
    fn division_by_zero_saturates() {
        reset_overflow_count();
        let x = Fix32_16::from_f64(2.0) / Fix32_16::zero();
        assert_eq!(x, Fix32_16::max_value());
        assert!(overflow_count() > 0);
    }

    #[test]
    fn sqrt_and_trig_via_f64() {
        let x = Fix32_16::from_f64(2.0);
        assert!((x.sqrt().to_f64() - std::f64::consts::SQRT_2).abs() < 1e-4);
        let q = Fix32_16::from_f64(0.5);
        assert!((q.sin().to_f64() - 0.5_f64.sin()).abs() < 1e-4);
        assert!((q.cos().to_f64() - 0.5_f64.cos()).abs() < 1e-4);
    }

    #[test]
    fn names_follow_paper_notation() {
        assert_eq!(Fix32_16::name(), "Fixed{16,16}");
        assert_eq!(Fix14_18::name(), "Fixed{14,18}");
        assert_eq!(Fix14_6::name(), "Fixed{14,6}");
    }

    #[test]
    fn ordering() {
        let a = Fix32_16::from_f64(1.0);
        let b = Fix32_16::from_f64(2.0);
        assert!(a < b);
        assert_eq!(Scalar::max(a, b), b);
        assert_eq!(Scalar::abs(Fix32_16::from_f64(-3.0)).to_f64(), 3.0);
    }

    #[test]
    fn spatial_algebra_in_fixed_point() {
        use robo_spatial::{Mat3, Motion, Transform, Vec3};
        let xf = Transform::<f64>::new(Mat3::coord_rotation_z(0.3), Vec3::new(0.1, 0.0, 0.4));
        let m = Motion::new(Vec3::new(0.2, -0.5, 0.8), Vec3::new(1.0, 0.25, -0.75));
        let exact = xf.apply_motion(m);
        let fixed: Motion<Fix32_16> = xf.cast::<Fix32_16>().apply_motion(m.cast());
        let err = (fixed.cast::<f64>() - exact).max_abs();
        assert!(err < 1e-3, "fixed-point spatial transform error {err}");
    }
}
