//! An iLQR trajectory optimizer over the dynamics gradient.
//!
//! This is the workspace's nonlinear-MPC substrate (the paper's §3
//! application): iteratively optimize a trajectory by linearizing the
//! dynamics with the forward-dynamics gradient — *the* kernel the
//! accelerator computes — and solving a Riccati backward pass.
//!
//! Mixed precision mirrors the paper's deployment (§6.2, Figure 12: "we
//! experimented with different data types for the dynamics gradient
//! function within a nonlinear MPC implementation"): the dynamics-gradient
//! *kernel* — Algorithm 1, including its `M⁻¹` input — runs in the scalar
//! type `S` (`f32`, or any `Fixed{i,f}`), exactly the accelerator's place
//! in the system, while rollouts and the Riccati recursion stay in `f64`
//! on the host. Sweeping `S` reproduces Figure 12's cost-convergence
//! comparison.

use robo_dynamics::batch::{BatchEngine, GradientState};
use robo_dynamics::engine::{CpuAnalytic, GradientBackend, GradientBatchOutput};
use robo_dynamics::{
    forward_dynamics, forward_kinematics, link_origin_world, mass_matrix_inverse,
    position_jacobian, DynamicsModel,
};
use robo_model::RobotModel;
use robo_spatial::{MatN, Scalar, Vec3};

/// A joint-space reaching task for the optimizer, optionally augmented
/// with a Cartesian end-effector goal and joint effort limits.
#[derive(Debug, Clone)]
pub struct ReachingTask {
    /// The robot.
    pub robot: RobotModel,
    /// Integration step (seconds).
    pub dt: f64,
    /// Trajectory length in time steps.
    pub horizon: usize,
    /// Initial state `[q; q̇]` (length `2n`).
    pub x0: Vec<f64>,
    /// Goal state `[q; q̇]`.
    pub x_goal: Vec<f64>,
    /// Running position-error weight.
    pub w_q: f64,
    /// Running velocity weight.
    pub w_qd: f64,
    /// Control effort weight.
    pub w_u: f64,
    /// Terminal cost multiplier (applied to `w_q`, `w_qd`).
    pub w_terminal: f64,
    /// Optional task-space goal: `(link index, world-frame target)` for
    /// that link's origin, weighted by [`ReachingTask::w_ee`] at the
    /// terminal state.
    pub ee_goal: Option<(usize, Vec3<f64>)>,
    /// Terminal end-effector weight (ignored without [`ReachingTask::ee_goal`]).
    pub w_ee: f64,
    /// Clamp controls to the model's joint effort limits during rollouts.
    pub clamp_effort: bool,
}

impl ReachingTask {
    /// The Figure 12 experiment's task: the iiwa manipulator reaching a
    /// joint-space posture from rest.
    ///
    /// Amplitudes and weights are chosen so the problem's dynamic range
    /// fits the narrowest type in the paper's sweep (20-bit `Fixed{14,6}`),
    /// as the paper's own study required ("a range of fixed-point values
    /// worked as well as floating-point", §6.2).
    pub fn iiwa_reach() -> Self {
        let robot = robo_model::robots::iiwa14();
        let n = robot.dof();
        let mut x0 = vec![0.0; 2 * n];
        let mut x_goal = vec![0.0; 2 * n];
        let start = [0.1, -0.2, 0.15, 0.25, -0.1, 0.15, 0.05];
        let goal = [-0.15, 0.25, -0.1, -0.2, 0.15, -0.25, 0.1];
        x0[..n].copy_from_slice(&start);
        x_goal[..n].copy_from_slice(&goal);
        Self {
            robot,
            dt: 0.01,
            horizon: 24,
            x0,
            x_goal,
            w_q: 5.0,
            w_qd: 0.1,
            w_u: 1e-3,
            w_terminal: 50.0,
            ee_goal: None,
            w_ee: 0.0,
            clamp_effort: false,
        }
    }

    /// A task-space variant: drive the iiwa's last link origin to a world
    /// point, with only mild joint-space regularization.
    pub fn iiwa_ee_reach(target: Vec3<f64>) -> Self {
        let mut task = Self::iiwa_reach();
        task.x_goal = vec![0.0; task.x0.len()];
        task.w_q = 0.05;
        task.w_terminal = 10.0;
        task.ee_goal = Some((task.robot.dof() - 1, target));
        task.w_ee = 400.0;
        task
    }

    fn n(&self) -> usize {
        self.robot.dof()
    }

    fn clamp_u(&self, u: &mut [f64]) {
        if self.clamp_effort {
            for (i, ui) in u.iter_mut().enumerate() {
                *ui = self.robot.links()[i].limits.clamp_effort(*ui);
            }
        }
    }
}

/// Solver options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlqrOptions {
    /// Optimization iterations (the paper assumes 10 per MPC solve).
    pub iterations: usize,
    /// Initial Levenberg-style regularization on `Q_uu`.
    pub initial_reg: f64,
    /// Backtracking line-search steps per iteration.
    pub line_search_steps: usize,
}

impl Default for IlqrOptions {
    fn default() -> Self {
        Self {
            iterations: 10,
            initial_reg: 1e-6,
            line_search_steps: 8,
        }
    }
}

/// Optimization trace and result.
#[derive(Debug, Clone)]
pub struct IlqrResult {
    /// Total cost after each iteration; index 0 is the initial rollout
    /// (Figure 12 plots these series per numeric type).
    pub costs: Vec<f64>,
    /// Final control sequence.
    pub controls: Vec<Vec<f64>>,
    /// Final state trajectory.
    pub states: Vec<Vec<f64>>,
}

impl IlqrResult {
    /// The last cost in the trace.
    pub fn final_cost(&self) -> f64 {
        *self.costs.last().expect("trace is never empty")
    }
}

struct Rollout {
    xs: Vec<Vec<f64>>,
    cost: f64,
}

/// Solves the task with iLQR, computing the dynamics gradient in scalar
/// type `S` (the accelerator's arithmetic) and everything else in `f64`,
/// through a [`CpuAnalytic`] engine backend (the paper's type-generic
/// study).
///
/// # Panics
///
/// Panics if the task dimensions are inconsistent.
pub fn solve<S: Scalar>(task: &ReachingTask, opts: &IlqrOptions) -> IlqrResult {
    let backend = CpuAnalytic::<S>::new(&task.robot);
    solve_with_backend(task, opts, &backend)
}

/// Solves the task with iLQR using an arbitrary [`GradientBackend`] — e.g.
/// a simulated (or real) accelerator in the loop, swapped in one line.
///
/// The backward pass linearizes all time steps data-parallel on the shared
/// batch engine (the per-time-step parallelism of §6.1); each worker
/// receives a [`GradientBackend::fork`] of `backend` over the same shared
/// plan.
///
/// # Panics
///
/// Panics if the task dimensions are inconsistent.
pub fn solve_with_backend(
    task: &ReachingTask,
    opts: &IlqrOptions,
    backend: &dyn GradientBackend,
) -> IlqrResult {
    let n = task.n();
    assert_eq!(task.x0.len(), 2 * n, "x0 must have length 2n");
    assert_eq!(task.x_goal.len(), 2 * n, "x_goal must have length 2n");

    let model = DynamicsModel::<f64>::new(&task.robot);

    // Warm start with gravity compensation at the initial posture: keeps
    // the first rollout near-stationary (a zero-torque arm free-falls and
    // can blow up the explicit integration over long horizons).
    let mut hold = robo_dynamics::bias_torques(&model, &task.x0[..n], &vec![0.0; n]);
    task.clamp_u(&mut hold);
    let mut us = vec![hold; task.horizon];
    let mut rollout = roll(task, &model, &us);
    let mut costs = vec![rollout.cost];
    let mut reg = opts.initial_reg;

    for _ in 0..opts.iterations {
        let bwd_span = robo_trace::span_items("ilqr.backward", us.len());
        let bwd = backward_pass(task, &model, backend, &rollout.xs, &us, reg);
        drop(bwd_span);
        let Some((ks, kmats)) = bwd else {
            // Backward pass failed (e.g. fixed-point garbage made Q_uu
            // indefinite): raise regularization and record a flat step.
            reg *= 10.0;
            costs.push(rollout.cost);
            continue;
        };

        // Backtracking line search on the feedback rollout.
        let _fwd_span = robo_trace::span_items("ilqr.forward", us.len());
        let mut improved = false;
        let mut alpha = 1.0;
        for _ in 0..opts.line_search_steps {
            let (new_us, new_rollout) =
                feedback_roll(task, &model, &rollout.xs, &us, &ks, &kmats, alpha);
            if new_rollout.cost.is_finite() && new_rollout.cost < rollout.cost {
                us = new_us;
                rollout = new_rollout;
                improved = true;
                break;
            }
            alpha *= 0.5;
        }
        if improved {
            reg = (reg * 0.5).max(opts.initial_reg);
        } else {
            reg *= 10.0;
        }
        costs.push(rollout.cost);
    }

    IlqrResult {
        costs,
        controls: us,
        states: rollout.xs,
    }
}

fn dynamics_step(
    task: &ReachingTask,
    model: &DynamicsModel<f64>,
    x: &[f64],
    u: &[f64],
) -> Vec<f64> {
    let n = task.n();
    let (q, qd) = x.split_at(n);
    let qdd = forward_dynamics(model, q, qd, u).expect("valid mass matrix");
    // Semi-implicit Euler: q̇' = q̇ + dt·q̈ ; q' = q + dt·q̇'.
    let mut x_next = vec![0.0; 2 * n];
    for i in 0..n {
        x_next[n + i] = qd[i] + task.dt * qdd[i];
        x_next[i] = q[i] + task.dt * x_next[n + i];
    }
    x_next
}

fn stage_cost(task: &ReachingTask, x: &[f64], u: &[f64]) -> f64 {
    let n = task.n();
    let mut c = 0.0;
    for i in 0..n {
        let eq = x[i] - task.x_goal[i];
        let ev = x[n + i] - task.x_goal[n + i];
        c += 0.5 * task.w_q * eq * eq + 0.5 * task.w_qd * ev * ev + 0.5 * task.w_u * u[i] * u[i];
    }
    c
}

fn terminal_cost(task: &ReachingTask, model: &DynamicsModel<f64>, x: &[f64]) -> f64 {
    let n = task.n();
    let mut c = 0.0;
    for i in 0..n {
        let eq = x[i] - task.x_goal[i];
        let ev = x[n + i] - task.x_goal[n + i];
        c += 0.5 * task.w_terminal * (task.w_q * eq * eq + task.w_qd * ev * ev);
    }
    if let Some((link, target)) = task.ee_goal {
        let poses = forward_kinematics(model, &x[..n]);
        let err = link_origin_world(&poses, link) - target;
        c += 0.5 * task.w_ee * err.dot(err);
    }
    c
}

fn roll(task: &ReachingTask, model: &DynamicsModel<f64>, us: &[Vec<f64>]) -> Rollout {
    let mut xs = Vec::with_capacity(us.len() + 1);
    xs.push(task.x0.clone());
    let mut cost = 0.0;
    for u in us {
        let x = xs.last().expect("non-empty");
        cost += stage_cost(task, x, u);
        xs.push(dynamics_step(task, model, x, u));
    }
    cost += terminal_cost(task, model, xs.last().expect("non-empty"));
    Rollout { xs, cost }
}

fn feedback_roll(
    task: &ReachingTask,
    model: &DynamicsModel<f64>,
    ref_xs: &[Vec<f64>],
    ref_us: &[Vec<f64>],
    ks: &[Vec<f64>],
    kmats: &[MatN<f64>],
    alpha: f64,
) -> (Vec<Vec<f64>>, Rollout) {
    let n = task.n();
    let mut xs = Vec::with_capacity(ref_us.len() + 1);
    xs.push(task.x0.clone());
    let mut us = Vec::with_capacity(ref_us.len());
    let mut cost = 0.0;
    for t in 0..ref_us.len() {
        let x = xs.last().expect("non-empty").clone();
        let dx: Vec<f64> = (0..2 * n).map(|i| x[i] - ref_xs[t][i]).collect();
        let kdx = kmats[t].mul_vec(&dx);
        let mut u: Vec<f64> = (0..n)
            .map(|i| ref_us[t][i] + alpha * ks[t][i] + kdx[i])
            .collect();
        task.clamp_u(&mut u);
        cost += stage_cost(task, &x, &u);
        xs.push(dynamics_step(task, model, &x, &u));
        us.push(u);
    }
    cost += terminal_cost(task, model, xs.last().expect("non-empty"));
    (us, Rollout { xs, cost })
}

#[allow(clippy::type_complexity)]
fn backward_pass(
    task: &ReachingTask,
    model: &DynamicsModel<f64>,
    backend: &dyn GradientBackend,
    xs: &[Vec<f64>],
    us: &[Vec<f64>],
    reg: f64,
) -> Option<(Vec<Vec<f64>>, Vec<MatN<f64>>)> {
    let n = task.n();
    let horizon = us.len();

    // Terminal value function.
    let mut v_x = vec![0.0; 2 * n];
    let mut v_xx = MatN::zeros(2 * n, 2 * n);
    let xf = &xs[horizon];
    for i in 0..n {
        v_x[i] = task.w_terminal * task.w_q * (xf[i] - task.x_goal[i]);
        v_x[n + i] = task.w_terminal * task.w_qd * (xf[n + i] - task.x_goal[n + i]);
        v_xx[(i, i)] = task.w_terminal * task.w_q;
        v_xx[(n + i, n + i)] = task.w_terminal * task.w_qd;
    }
    // Task-space terminal cost: Gauss-Newton expansion through the
    // position Jacobian (l_q = w Jᵀe, l_qq ≈ w JᵀJ).
    if let Some((link, target)) = task.ee_goal {
        let poses = forward_kinematics(model, &xf[..n]);
        let err = link_origin_world(&poses, link) - target;
        let jp = position_jacobian(model, &xf[..n], link);
        let e = [err.x, err.y, err.z];
        for col in 0..n {
            let mut acc = 0.0;
            for r in 0..3 {
                acc += jp[(r, col)] * e[r];
            }
            v_x[col] += task.w_ee * acc;
        }
        for i in 0..n {
            for j2 in 0..n {
                let mut acc = 0.0;
                for r in 0..3 {
                    acc += jp[(r, i)] * jp[(r, j2)];
                }
                v_xx[(i, j2)] += task.w_ee * acc;
            }
        }
    }

    let mut ks = vec![vec![0.0; n]; horizon];
    let mut kmats = vec![MatN::zeros(n, 2 * n); horizon];

    // Linearize every time step up front (the per-time-step parallelism of
    // §6.1), in two stages. First the host computes q̈ and M⁻¹ in float,
    // data-parallel on the shared batch engine; any singular mass matrix
    // maps to None, triggering the regularization retry in
    // `solve_with_backend`. Then the whole horizon goes through the
    // backend's SoA batch path — two-level (threads × lanes) parallelism:
    // workers fork the backend over the shared plan, and wide backends run
    // `serve_width()` time steps per kernel instruction (the active
    // `ExecTier`'s lane width) — filling one flat
    // `GradientBatchOutput` whose per-step blocks the Riccati recursion
    // below indexes directly. Non-finite gradients (e.g. fixed-point
    // garbage) also map to None.
    let prep: Vec<Option<(Vec<f64>, MatN<f64>)>> = BatchEngine::global().run_with_state(
        horizon,
        || (),
        |(), t| {
            let (q, qd) = xs[t].split_at(n);
            let qdd = forward_dynamics(model, q, qd, &us[t]).ok()?;
            let minv = mass_matrix_inverse(model, q).ok()?;
            Some((qdd, minv))
        },
    );
    let mut prep_ok: Vec<(Vec<f64>, MatN<f64>)> = Vec::with_capacity(horizon);
    for p in prep {
        prep_ok.push(p?);
    }
    let states: Vec<GradientState<'_, f64>> = (0..horizon)
        .map(|t| {
            let (q, qd) = xs[t].split_at(n);
            GradientState {
                q,
                qd,
                qdd: &prep_ok[t].0,
                minv: &prep_ok[t].1,
            }
        })
        .collect();
    let mut lin = GradientBatchOutput::new();
    backend
        .gradient_batch_on_into(BatchEngine::global(), &states, &mut lin)
        .ok()?;
    drop(states);
    for t in 0..horizon {
        if !lin.dqdd_dq_at(t).iter().all(|v| v.is_finite()) {
            return None;
        }
    }

    for t in (0..horizon).rev() {
        let x = &xs[t];
        let u = &us[t];

        let dqdd_dq = lin.dqdd_dq_at(t);
        let dqdd_dqd = lin.dqdd_dqd_at(t);
        let minv = &prep_ok[t].1;

        // A = ∂x'/∂x and B = ∂x'/∂u of the semi-implicit Euler step.
        let dt = task.dt;
        let mut a = MatN::zeros(2 * n, 2 * n);
        let mut b = MatN::zeros(2 * n, n);
        for i in 0..n {
            for j in 0..n {
                let dq = dqdd_dq[i * n + j];
                let dv = dqdd_dqd[i * n + j];
                let mi = minv[(i, j)];
                // q̇' rows.
                a[(n + i, j)] = dt * dq;
                a[(n + i, n + j)] = ((i == j) as u8 as f64) + dt * dv;
                b[(n + i, j)] = dt * mi;
                // q' rows: q' = q + dt q̇'.
                a[(i, j)] = ((i == j) as u8 as f64) + dt * dt * dq;
                a[(i, n + j)] = dt * (((i == j) as u8 as f64) + dt * dv);
                b[(i, j)] = dt * dt * mi;
            }
        }

        // Stage cost expansion (quadratic, diagonal).
        let mut l_x = vec![0.0; 2 * n];
        let mut l_xx = MatN::zeros(2 * n, 2 * n);
        for i in 0..n {
            l_x[i] = task.w_q * (x[i] - task.x_goal[i]);
            l_x[n + i] = task.w_qd * (x[n + i] - task.x_goal[n + i]);
            l_xx[(i, i)] = task.w_q;
            l_xx[(n + i, n + i)] = task.w_qd;
        }
        let l_u: Vec<f64> = u.iter().map(|ui| task.w_u * ui).collect();

        // Q-expansion.
        let at = a.transpose();
        let bt = b.transpose();
        let q_x: Vec<f64> = {
            let av = at.mul_vec(&v_x);
            (0..2 * n).map(|i| l_x[i] + av[i]).collect()
        };
        let q_u: Vec<f64> = {
            let bv = bt.mul_vec(&v_x);
            (0..n).map(|i| l_u[i] + bv[i]).collect()
        };
        let vxx_a = v_xx.mul_mat(&a);
        let q_xx = {
            let mut m = at.mul_mat(&vxx_a);
            for i in 0..2 * n {
                for j in 0..2 * n {
                    m[(i, j)] += l_xx[(i, j)];
                }
            }
            m
        };
        let q_ux = bt.mul_mat(&vxx_a);
        let mut q_uu = bt.mul_mat(&v_xx.mul_mat(&b));
        for i in 0..n {
            q_uu[(i, i)] += task.w_u + reg;
        }

        let factor = q_uu.ldlt().ok()?;
        let k = factor.solve(&q_u).ok()?;
        let mut kmat = MatN::zeros(n, 2 * n);
        for col in 0..2 * n {
            let rhs: Vec<f64> = (0..n).map(|i| q_ux[(i, col)]).collect();
            let sol = factor.solve(&rhs).ok()?;
            for i in 0..n {
                kmat[(i, col)] = -sol[i];
            }
        }
        let k: Vec<f64> = k.iter().map(|v| -v).collect();

        // Value function update:
        // V_x = Q_x + Kᵀ Q_uu k + Kᵀ Q_u + Q_uxᵀ k.
        let q_uu_k = q_uu.mul_vec(&k);
        let mut new_v_x = vec![0.0; 2 * n];
        for i in 0..2 * n {
            let mut acc = q_x[i];
            for a_idx in 0..n {
                acc +=
                    kmat[(a_idx, i)] * (q_uu_k[a_idx] + q_u[a_idx]) + q_ux[(a_idx, i)] * k[a_idx];
            }
            new_v_x[i] = acc;
        }
        // V_xx = Q_xx + Kᵀ Q_uu K + Kᵀ Q_ux + Q_uxᵀ K.
        let kt = kmat.transpose();
        let mut new_v_xx = q_xx;
        let kt_quu_k = kt.mul_mat(&q_uu.mul_mat(&kmat));
        let kt_qux = kt.mul_mat(&q_ux);
        for i in 0..2 * n {
            for j in 0..2 * n {
                new_v_xx[(i, j)] += kt_quu_k[(i, j)] + kt_qux[(i, j)] + kt_qux[(j, i)];
            }
        }
        // Symmetrize against drift.
        for i in 0..2 * n {
            for j in (i + 1)..2 * n {
                let avg = 0.5 * (new_v_xx[(i, j)] + new_v_xx[(j, i)]);
                new_v_xx[(i, j)] = avg;
                new_v_xx[(j, i)] = avg;
            }
        }

        v_x = new_v_x;
        v_xx = new_v_xx;
        ks[t] = k;
        kmats[t] = kmat;
    }

    Some((ks, kmats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_fixed::{Fix14_6, Fix32_16};

    fn small_task() -> ReachingTask {
        let mut task = ReachingTask::iiwa_reach();
        task.horizon = 12; // keep unit tests quick
        task
    }

    #[test]
    fn f64_solver_reduces_cost() {
        let task = small_task();
        let result = solve::<f64>(&task, &IlqrOptions::default());
        assert!(result.costs.len() == 11);
        // The gravity-compensated warm start already removes the free-fall
        // cost, so the optimizer's job is the reach itself.
        assert!(
            result.final_cost() < 0.5 * result.costs[0],
            "cost {} -> {} insufficient descent",
            result.costs[0],
            result.final_cost()
        );
        // Monotone non-increasing trace (line search rejects ascent).
        for w in result.costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn fixed_point_32_matches_float_convergence() {
        // Figure 12's conclusion: Fixed{16,16} converges like f32.
        let task = small_task();
        let f = solve::<f32>(&task, &IlqrOptions::default());
        let x = solve::<Fix32_16>(&task, &IlqrOptions::default());
        let rel = (x.final_cost() - f.final_cost()).abs() / f.final_cost().max(1e-9);
        assert!(
            rel < 0.2,
            "Fixed{{16,16}} final {} vs f32 {} ({}% apart)",
            x.final_cost(),
            f.final_cost(),
            rel * 100.0
        );
    }

    #[test]
    fn twenty_bit_fixed_point_converges_like_float() {
        // §6.2: "Results indicate it is possible to use 20 bits (14
        // integer, 6 decimal) in future work."
        let task = small_task();
        let f = solve::<f32>(&task, &IlqrOptions::default());
        let x = solve::<Fix14_6>(&task, &IlqrOptions::default());
        let rel = (x.final_cost() - f.final_cost()).abs() / f.final_cost().max(1e-9);
        assert!(
            rel < 0.25,
            "Fixed{{14,6}} final {} vs f32 {} ({}% apart)",
            x.final_cost(),
            f.final_cost(),
            rel * 100.0
        );
    }

    #[test]
    fn task_space_goal_pulls_end_effector() {
        use robo_dynamics::{forward_kinematics, link_origin_world};
        // A reachable point in front of the arm.
        let target = robo_spatial::Vec3::new(0.35, 0.2, 0.9);
        let mut task = ReachingTask::iiwa_ee_reach(target);
        task.horizon = 48;
        task.dt = 0.02;
        task.w_ee = 800.0;
        let opts = IlqrOptions {
            iterations: 25,
            ..Default::default()
        };
        let result = solve::<f64>(&task, &opts);
        let model = DynamicsModel::<f64>::new(&task.robot);
        let n = task.robot.dof();
        let dist_of = |x: &[f64]| {
            let poses = forward_kinematics(&model, &x[..n]);
            (link_origin_world(&poses, n - 1) - target).norm()
        };
        let initial = dist_of(&task.x0);
        let final_d = dist_of(result.states.last().expect("states"));
        assert!(
            final_d < 0.25 * initial,
            "end effector moved {initial:.3} -> {final_d:.3} m from target"
        );
    }

    #[test]
    fn effort_limits_are_respected_when_clamped() {
        use robo_model::JointLimits;
        let mut task = small_task();
        task.clamp_effort = true;
        // Tighten every joint's effort budget.
        let links: Vec<robo_model::Link> = task
            .robot
            .links()
            .iter()
            .map(|l| {
                let mut l = l.clone();
                l.limits = JointLimits {
                    effort: Some(6.0),
                    ..JointLimits::none()
                };
                l
            })
            .collect();
        task.robot = robo_model::RobotModel::new("iiwa_limited", links).unwrap();
        let result = solve::<f64>(&task, &IlqrOptions::default());
        for u in &result.controls {
            for ui in u {
                assert!(ui.abs() <= 6.0 + 1e-12, "control {ui} exceeds limit");
            }
        }
        // The optimizer still makes progress under the tighter budget.
        assert!(result.final_cost() < result.costs[0]);
    }

    #[test]
    fn trace_lengths_and_shapes() {
        let task = small_task();
        let opts = IlqrOptions {
            iterations: 5,
            ..Default::default()
        };
        let r = solve::<f64>(&task, &opts);
        assert_eq!(r.costs.len(), 6);
        assert_eq!(r.controls.len(), task.horizon);
        assert_eq!(r.states.len(), task.horizon + 1);
    }
}
