//! Nonlinear MPC substrate: trajectory optimization over the dynamics
//! gradient, and the control-rate analysis of Figures 4 and 15.
//!
//! * [`solve`] / [`ReachingTask`] — an iLQR optimizer whose dynamics
//!   gradient runs in any [`robo_spatial::Scalar`] (the accelerator's
//!   fixed point) while the solver shell stays in `f64`, reproducing the
//!   paper's Figure 12 numeric-type study;
//! * [`run_mpc`] / [`solve_with_backend`] — closed-loop receding-horizon
//!   MPC and single-trajectory optimization with the gradient kernel
//!   behind the engine layer's
//!   [`GradientBackend`](robo_dynamics::engine::GradientBackend) trait, so
//!   a simulated (or real) accelerator runs in the loop as a one-line
//!   backend swap;
//! * [`ControlRateModel`] — the analytical model converting per-step
//!   gradient cost into achievable MPC control rates against the 250 Hz /
//!   1 kHz thresholds (Figures 4 and 15).
//!
//! # Example
//!
//! ```
//! use robo_trajopt::{solve, IlqrOptions, ReachingTask};
//!
//! let mut task = ReachingTask::iiwa_reach();
//! task.horizon = 8; // keep the doctest quick
//! let result = solve::<f64>(&task, &IlqrOptions { iterations: 3, ..Default::default() });
//! assert!(result.final_cost() < result.costs[0]);
//! ```

#![warn(missing_docs)]
// Index-based loops over fixed-size matrix dimensions are clearer than
// iterator chains in this numerical code.
#![allow(clippy::needless_range_loop)]

mod ilqr;
mod mpc;
mod rate;

pub use ilqr::{solve, solve_with_backend, IlqrOptions, IlqrResult, ReachingTask};
pub use mpc::{run_mpc, MpcConfig, MpcResult};
pub use rate::{ControlRateModel, ACTUATOR_RATE_HZ, MPC_MINIMUM_RATE_HZ, PAPER_OPT_ITERATIONS};
