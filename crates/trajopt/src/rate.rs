//! The control-rate analytical model of Figures 4 and 15.
//!
//! The paper estimates nonlinear-MPC control rates from the per-time-step
//! cost of the dynamics gradient: a planner running `I` optimization
//! iterations over a trajectory of `T` time steps, where the gradient
//! kernel is a fraction `g` of each step's work (30–90% across
//! implementations, §3), achieves
//!
//! ```text
//! rate = 1 / (I · T · t_step),    t_step = t_gradient / g.
//! ```
//!
//! Figure 4 evaluates this with measured software gradient times against
//! the 250 Hz (minimum for online nonlinear MPC) and 1 kHz (joint actuator
//! rate) thresholds; Figure 15 swaps in the accelerator's round-trip
//! gradient time.

/// The 1 kHz threshold: "the control rate at which robot joint actuators
/// are capable of responding" (§3).
pub const ACTUATOR_RATE_HZ: f64 = 1000.0;

/// The 250 Hz threshold: "a minimum suggested rate for nonlinear MPC to be
/// run online" (§3).
pub const MPC_MINIMUM_RATE_HZ: f64 = 250.0;

/// The paper's assumed optimization iteration count ("we assume 10
/// iterations of the optimization loop", Figure 4).
pub const PAPER_OPT_ITERATIONS: usize = 10;

/// The analytical control-rate model.
///
/// # Examples
///
/// ```
/// use robo_trajopt::ControlRateModel;
///
/// // A manipulator with a 4 µs gradient at 40% of per-step work can hold
/// // 1 kHz only for short horizons.
/// let m = ControlRateModel::new(10, 4e-6, 0.4);
/// assert!(m.control_rate_hz(5) > 1000.0);
/// assert!(m.control_rate_hz(100) < 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlRateModel {
    /// Optimization loop iterations per control step.
    pub opt_iterations: usize,
    /// Time of one dynamics-gradient evaluation (seconds).
    pub gradient_time_s: f64,
    /// Fraction of per-time-step work spent in the gradient kernel
    /// (the paper's 30–90% band, §3).
    pub gradient_fraction: f64,
}

impl ControlRateModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `gradient_fraction` is not in `(0, 1]` or any quantity is
    /// non-positive.
    pub fn new(opt_iterations: usize, gradient_time_s: f64, gradient_fraction: f64) -> Self {
        assert!(opt_iterations > 0, "need at least one iteration");
        assert!(gradient_time_s > 0.0, "gradient time must be positive");
        assert!(
            gradient_fraction > 0.0 && gradient_fraction <= 1.0,
            "gradient fraction must be in (0, 1]"
        );
        Self {
            opt_iterations,
            gradient_time_s,
            gradient_fraction,
        }
    }

    /// Per-time-step optimization work (gradient plus everything else).
    pub fn per_step_time_s(&self) -> f64 {
        self.gradient_time_s / self.gradient_fraction
    }

    /// Achievable control rate for a `timesteps`-long trajectory.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0`.
    pub fn control_rate_hz(&self, timesteps: usize) -> f64 {
        assert!(timesteps > 0, "need at least one time step");
        1.0 / (self.opt_iterations as f64 * timesteps as f64 * self.per_step_time_s())
    }

    /// Longest trajectory sustaining at least `rate_hz` (0 if even one step
    /// is too slow) — Figure 15's "plan on longer time horizons" metric.
    pub fn max_timesteps_at(&self, rate_hz: f64) -> usize {
        let t = 1.0 / (rate_hz * self.opt_iterations as f64 * self.per_step_time_s());
        t.floor().max(0.0) as usize
    }

    /// The model with the gradient kernel replaced by an accelerated
    /// implementation taking `accelerated_gradient_s` per step; the
    /// non-gradient work is unchanged (Amdahl's law, which is why Figure
    /// 15's gains are smaller than the raw kernel speedup).
    pub fn with_accelerated_gradient(&self, accelerated_gradient_s: f64) -> Self {
        assert!(accelerated_gradient_s > 0.0);
        let other = self.per_step_time_s() - self.gradient_time_s;
        let new_step = other + accelerated_gradient_s;
        Self {
            opt_iterations: self.opt_iterations,
            gradient_time_s: accelerated_gradient_s,
            gradient_fraction: accelerated_gradient_s / new_step,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manipulator_model() -> ControlRateModel {
        // ~2.25 µs gradient at 45% of per-step work (5 µs per step):
        // matches Figure 4's manipulator band (1 kHz up to ~20-25 steps,
        // 250 Hz up to ~80) *and* Figure 15's accelerated horizons.
        ControlRateModel::new(PAPER_OPT_ITERATIONS, 2.25e-6, 0.45)
    }

    #[test]
    fn figure4_manipulator_thresholds() {
        let m = manipulator_model();
        let at_1khz = m.max_timesteps_at(ACTUATOR_RATE_HZ);
        let at_250hz = m.max_timesteps_at(MPC_MINIMUM_RATE_HZ);
        assert!(
            (15..=35).contains(&at_1khz),
            "1 kHz horizon {at_1khz} out of Figure 4 band"
        );
        assert!(
            (60..=110).contains(&at_250hz),
            "250 Hz horizon {at_250hz} out of Figure 4 band"
        );
    }

    #[test]
    fn rate_decreases_with_horizon() {
        let m = manipulator_model();
        assert!(m.control_rate_hz(10) > m.control_rate_hz(20));
        assert!(m.control_rate_hz(20) > m.control_rate_hz(128));
    }

    #[test]
    fn figure15_amdahl_improvement() {
        // A 2.75× faster gradient (the FPGA coprocessor band) extends the
        // 250 Hz horizon from ~80 to ~100-130 steps, not by 2.75×.
        let m = manipulator_model();
        let accel = m.with_accelerated_gradient(m.gradient_time_s / 2.75);
        let before = m.max_timesteps_at(MPC_MINIMUM_RATE_HZ);
        let after = accel.max_timesteps_at(MPC_MINIMUM_RATE_HZ);
        assert!(after > before);
        let gain = after as f64 / before as f64;
        assert!(
            (1.15..=1.75).contains(&gain),
            "Amdahl-limited gain {gain:.2} out of Figure 15's band"
        );
    }

    #[test]
    fn full_fraction_means_full_speedup() {
        let m = ControlRateModel::new(10, 4e-6, 1.0);
        let accel = m.with_accelerated_gradient(2e-6);
        let ratio = accel.control_rate_hz(50) / m.control_rate_hz(50);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "gradient fraction")]
    fn invalid_fraction_panics() {
        let _ = ControlRateModel::new(10, 1e-6, 1.5);
    }
}
