//! Closed-loop, receding-horizon nonlinear MPC.
//!
//! The paper's motivating application (§3): "nonlinear MPC involves
//! iteratively optimizing a candidate trajectory ... this online approach
//! allows a robot to adapt to unpredictable environments by quickly
//! recomputing safe trajectories". This module closes the loop: at every
//! control step the optimizer re-solves from the *measured* state (with
//! warm-started controls), applies the first control to the plant, and
//! repeats — with the dynamics-gradient kernel behind the same pluggable
//! interface the accelerator exposes, so hardware (simulated or real) can
//! run in the loop.

use crate::ilqr::{solve_with_backend, IlqrOptions, ReachingTask};
use robo_dynamics::engine::{EngineError, GradientBackend, GradientOutput};
use robo_dynamics::{forward_dynamics, DynamicsModel};
use robo_spatial::MatN;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration of a closed-loop MPC run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcConfig {
    /// Receding-horizon length (time steps per solve).
    pub horizon: usize,
    /// Optimizer iterations per control step (the paper assumes 10).
    pub iterations_per_step: usize,
    /// Number of control steps to simulate.
    pub control_steps: usize,
    /// Magnitude of a constant torque disturbance applied to the plant
    /// (unmodeled by the optimizer) — exercises the "adapt to
    /// unpredictable environments" property.
    pub disturbance: f64,
}

impl Default for MpcConfig {
    fn default() -> Self {
        Self {
            horizon: 12,
            iterations_per_step: 4,
            control_steps: 40,
            disturbance: 0.0,
        }
    }
}

/// Result of a closed-loop run.
#[derive(Debug, Clone)]
pub struct MpcResult {
    /// Plant states, one per control step (plus the initial state).
    pub states: Vec<Vec<f64>>,
    /// Position tracking error ‖q − q_goal‖ per control step.
    pub tracking_errors: Vec<f64>,
    /// Number of dynamics-gradient kernel invocations made.
    pub gradient_calls: usize,
}

impl MpcResult {
    /// The final tracking error.
    pub fn final_error(&self) -> f64 {
        *self
            .tracking_errors
            .last()
            .expect("at least one control step")
    }
}

/// A [`GradientBackend`] decorator counting kernel invocations. Atomic,
/// because the optimizer linearizes time steps in parallel on the batch
/// engine, and forks share the counter.
struct CountingBackend<'a> {
    inner: Box<dyn GradientBackend + 'a>,
    calls: &'a AtomicUsize,
}

impl GradientBackend for CountingBackend<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn dof(&self) -> usize {
        self.inner.dof()
    }

    fn gradient_into(
        &mut self,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
        minv: &MatN<f64>,
        out: &mut GradientOutput,
    ) -> Result<(), EngineError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.gradient_into(q, qd, qdd, minv, out)
    }

    fn fork(&self) -> Box<dyn GradientBackend + '_> {
        Box::new(CountingBackend {
            inner: self.inner.fork(),
            calls: self.calls,
        })
    }
}

/// Runs closed-loop MPC on the task's robot with the given gradient
/// backend — software, simulated accelerator, or (eventually) real
/// hardware behind the same trait.
///
/// # Panics
///
/// Panics if the task dimensions are inconsistent or the plant's mass
/// matrix becomes singular.
pub fn run_mpc(
    task: &ReachingTask,
    config: &MpcConfig,
    backend: &dyn GradientBackend,
) -> MpcResult {
    let n = task.robot.dof();
    let plant = DynamicsModel::<f64>::new(&task.robot);
    let mut x = task.x0.clone();
    let mut states = vec![x.clone()];
    let mut tracking_errors = Vec::with_capacity(config.control_steps);
    let mut gradient_calls = 0usize;

    let calls = AtomicUsize::new(0);
    let counting = CountingBackend {
        inner: backend.fork(),
        calls: &calls,
    };

    for _ in 0..config.control_steps {
        let mut step_task = task.clone();
        step_task.horizon = config.horizon;
        step_task.x0 = x.clone();
        let opts = IlqrOptions {
            iterations: config.iterations_per_step,
            ..Default::default()
        };
        let solved = solve_with_backend(&step_task, &opts, &counting);
        let u0 = solved.controls.first().expect("horizon >= 1").clone();

        // Plant step with the (unmodeled) disturbance.
        let (q, qd) = x.split_at(n);
        let tau: Vec<f64> = u0.iter().map(|u| u + config.disturbance).collect();
        let qdd = forward_dynamics(&plant, q, qd, &tau).expect("valid mass matrix");
        let mut x_next = vec![0.0; 2 * n];
        for i in 0..n {
            x_next[n + i] = qd[i] + task.dt * qdd[i];
            x_next[i] = q[i] + task.dt * x_next[n + i];
        }
        x = x_next;
        states.push(x.clone());

        let err: f64 = (0..n)
            .map(|i| (x[i] - task.x_goal[i]).powi(2))
            .sum::<f64>()
            .sqrt();
        tracking_errors.push(err);
    }
    gradient_calls += calls.load(Ordering::Relaxed);

    MpcResult {
        states,
        tracking_errors,
        gradient_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_dynamics::engine::CpuAnalytic;

    fn quick_task() -> ReachingTask {
        let mut t = ReachingTask::iiwa_reach();
        t.horizon = 10;
        t
    }

    #[test]
    fn closed_loop_reaches_the_goal() {
        let task = quick_task();
        let config = MpcConfig {
            control_steps: 30,
            ..Default::default()
        };
        let provider = CpuAnalytic::<f64>::new(&task.robot);
        let result = run_mpc(&task, &config, &provider);
        let initial: f64 = (0..task.robot.dof())
            .map(|i| (task.x0[i] - task.x_goal[i]).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(
            result.final_error() < 0.25 * initial,
            "final error {} vs initial {}",
            result.final_error(),
            initial
        );
        assert!(result.gradient_calls > 0);
    }

    #[test]
    fn rejects_constant_disturbance() {
        // With feedback re-planning every step, a constant unmodeled torque
        // must not blow the system up.
        let task = quick_task();
        let config = MpcConfig {
            control_steps: 30,
            disturbance: 0.5,
            ..Default::default()
        };
        let provider = CpuAnalytic::<f64>::new(&task.robot);
        let result = run_mpc(&task, &config, &provider);
        assert!(result.final_error() < 1.0, "error {}", result.final_error());
        assert!(result.states.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn gradient_call_accounting() {
        let task = quick_task();
        let config = MpcConfig {
            control_steps: 5,
            iterations_per_step: 3,
            horizon: 8,
            disturbance: 0.0,
        };
        let provider = CpuAnalytic::<f64>::new(&task.robot);
        let result = run_mpc(&task, &config, &provider);
        // Each optimizer iteration linearizes the full horizon.
        assert_eq!(result.gradient_calls, 5 * 3 * 8);
    }
}
