//! The robomorphic collision-checking accelerator template.
//!
//! §7 lists collision detection among the applications the methodology
//! extends to. The morphology parameterization is direct: the number of
//! *pruned* link pairs (adjacent pairs never need checking) sets the
//! parallel distance-unit count, the limb topology sets the FK front-end,
//! and the all-pairs minimum reduces through a comparator tree of depth
//! `⌈log₂ pairs⌉`.

use crate::checker::CollisionModel;
use robo_model::RobotModel;

/// A robot-customized collision-checking accelerator estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct CollisionAccelerator {
    robot_name: String,
    /// Pruned pairs checked in parallel.
    pub pairs: usize,
    /// Links (FK pipeline depth source).
    pub links: usize,
    /// Longest limb (FK latency driver).
    pub max_limb: usize,
}

/// Hardware cost of one segment-segment distance unit (Ericson's
/// algorithm: 5 dot products of 3-vectors, a 2×2 solve, clamps, and the
/// final norm) counted at the multiplier/adder level.
const DISTANCE_UNIT_MULS: usize = 5 * 3 + 6 + 3; // dots + solve + norm
const DISTANCE_UNIT_ADDS: usize = 5 * 2 + 4 + 2;

/// The collision template (step 1 for the collision-checking algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollisionTemplate {
    _private: (),
}

impl CollisionTemplate {
    /// Creates the template.
    pub fn new() -> Self {
        Self::default()
    }

    /// Step 2: customizes for a robot.
    pub fn customize(&self, robot: &RobotModel) -> CollisionAccelerator {
        let cm = CollisionModel::from_robot(robot, 0.05);
        CollisionAccelerator {
            robot_name: robot.name().to_owned(),
            pairs: cm.pairs().len(),
            links: robot.dof(),
            max_limb: robot.max_limb_len(),
        }
    }
}

impl CollisionAccelerator {
    /// Name of the robot this accelerator was customized for.
    pub fn robot_name(&self) -> &str {
        &self.robot_name
    }

    /// Variable multipliers across the parallel distance units.
    pub fn var_muls(&self) -> usize {
        self.pairs * DISTANCE_UNIT_MULS
    }

    /// Adders across the parallel distance units plus the min-reduction
    /// comparator tree.
    pub fn adds(&self) -> usize {
        self.pairs * DISTANCE_UNIT_ADDS + self.pairs.saturating_sub(1)
    }

    /// Latency in cycles: FK down the longest limb, one distance stage,
    /// and the comparator-tree reduction.
    pub fn latency_cycles(&self) -> usize {
        let reduction = usize::BITS as usize - self.pairs.leading_zeros() as usize;
        self.max_limb + 1 + reduction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;

    #[test]
    fn pair_counts_drive_parallelism() {
        let t = CollisionTemplate::new();
        let iiwa = t.customize(&robots::iiwa14());
        let hyq = t.customize(&robots::hyq());
        assert_eq!(iiwa.pairs, 10);
        assert_eq!(hyq.pairs, 54);
        assert!(hyq.var_muls() > iiwa.var_muls());
    }

    #[test]
    fn latency_tracks_limbs_and_reduction() {
        let t = CollisionTemplate::new();
        let iiwa = t.customize(&robots::iiwa14());
        // FK depth 7 + distance + ⌈log₂ 15⌉ = 7 + 1 + 4.
        assert_eq!(iiwa.latency_cycles(), 12);
        let hyq = t.customize(&robots::hyq());
        // Shorter limbs, more pairs: 3 + 1 + 6.
        assert_eq!(hyq.latency_cycles(), 10);
    }
}
