//! Robot self-collision checking via forward kinematics.

use crate::geometry::Capsule;
use robo_dynamics::{forward_kinematics, DynamicsModel};
use robo_model::RobotModel;
use robo_spatial::Vec3;

/// Per-link collision proxies and the pruned pair list.
///
/// The pair list is morphology-derived: adjacent links (parent/child) are
/// excluded because they always "touch" at the joint, and the remaining
/// pair count is what parameterizes the accelerator template's
/// parallelism.
#[derive(Debug, Clone)]
pub struct CollisionModel {
    capsules: Vec<Capsule>,
    pairs: Vec<(usize, usize)>,
}

impl CollisionModel {
    /// Builds a capsule model from the robot: each link gets a capsule
    /// from its frame origin toward its first child's joint origin (or
    /// toward twice its COM for leaf links), with the given radius.
    pub fn from_robot(robot: &RobotModel, radius: f64) -> Self {
        let n = robot.dof();
        let children = robot.children();
        let mut capsules = Vec::with_capacity(n);
        for (i, link) in robot.links().iter().enumerate() {
            let end = children[i]
                .first()
                .map(|c| robot.links()[*c].tree.pos)
                .unwrap_or_else(|| {
                    if link.inertia.mass > 0.0 {
                        link.inertia.com().scale(2.0)
                    } else {
                        Vec3::new(0.0, 0.0, 0.1)
                    }
                });
            capsules.push(Capsule::new(Vec3::zero(), end, radius));
        }

        // Morphology-pruned pair list: links within kinematic-graph
        // distance ≤ 2 share a joint neighborhood and are excluded, the
        // standard practice (and the robomorphic parameter: the pruned
        // pair count is read straight off the topology).
        let dist = |mut i: usize, mut j: usize| -> usize {
            // Tree distance via depths and the lowest common ancestor.
            let depth = |mut k: usize| {
                let mut d = 0;
                while let Some(p) = robot.parent(k) {
                    k = p;
                    d += 1;
                }
                d
            };
            let (mut di, mut dj) = (depth(i), depth(j));
            let mut steps = 0;
            while di > dj {
                i = robot.parent(i).expect("depth accounted");
                di -= 1;
                steps += 1;
            }
            while dj > di {
                j = robot.parent(j).expect("depth accounted");
                dj -= 1;
                steps += 1;
            }
            while i != j {
                match (robot.parent(i), robot.parent(j)) {
                    (Some(pi), Some(pj)) => {
                        i = pi;
                        j = pj;
                        steps += 2;
                    }
                    // Different base-attached subtrees: treat as far apart.
                    _ => return usize::MAX,
                }
            }
            steps
        };
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if dist(i, j) > 2 {
                    pairs.push((i, j));
                }
            }
        }
        Self { capsules, pairs }
    }

    /// The per-link capsules (in link frames).
    pub fn capsules(&self) -> &[Capsule] {
        &self.capsules
    }

    /// The pruned link pairs to check.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }
}

/// One pair's clearance at a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairClearance {
    /// The two link indices.
    pub pair: (usize, usize),
    /// Signed clearance (negative = interpenetration).
    pub clearance: f64,
}

/// Checks all pruned pairs at configuration `q`, returning per-pair
/// clearances (the full high-fidelity query of §7).
///
/// # Panics
///
/// Panics if `q.len() != model dof`.
pub fn self_clearances(
    model: &DynamicsModel<f64>,
    collision: &CollisionModel,
    q: &[f64],
) -> Vec<PairClearance> {
    let poses = forward_kinematics(model, q);
    // World-frame capsules: transform both endpoints out of the link frame.
    let world: Vec<Capsule> = collision
        .capsules()
        .iter()
        .zip(poses.iter())
        .map(|(c, pose)| {
            // pose.rot maps world→link coordinates; its transpose maps a
            // link-frame point back to world, offset by the link origin.
            Capsule::new(
                pose.pos + pose.rot.tr_mul_vec(c.a),
                pose.pos + pose.rot.tr_mul_vec(c.b),
                c.radius,
            )
        })
        .collect();
    collision
        .pairs()
        .iter()
        .map(|&(i, j)| PairClearance {
            pair: (i, j),
            clearance: world[i].distance(&world[j]),
        })
        .collect()
}

/// Minimum clearance over all pruned pairs (negative = self collision).
pub fn min_clearance(model: &DynamicsModel<f64>, collision: &CollisionModel, q: &[f64]) -> f64 {
    self_clearances(model, collision, q)
        .iter()
        .map(|p| p.clearance)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;

    #[test]
    fn pair_pruning_counts() {
        // iiwa chain: 21 pairs − 6 adjacent − 5 grandparent = 10.
        let robot = robots::iiwa14();
        let cm = CollisionModel::from_robot(&robot, 0.06);
        assert_eq!(cm.pairs().len(), 10);
        // Quadruped: all 3 intra-leg pairs of each leg are within distance
        // 2 (pruned); cross-leg pairs go through the base and are all
        // kept: 66 − 12 = 54.
        let hyq = CollisionModel::from_robot(&robots::hyq(), 0.05);
        assert_eq!(hyq.pairs().len(), 54);
    }

    #[test]
    fn extended_arm_is_collision_free() {
        let robot = robots::iiwa14();
        let model = DynamicsModel::<f64>::new(&robot);
        let cm = CollisionModel::from_robot(&robot, 0.05);
        let q = vec![0.0; 7];
        let min = min_clearance(&model, &cm, &q);
        assert!(
            min > 0.0,
            "straight iiwa should not self-collide, min {min}"
        );
    }

    #[test]
    fn folded_arm_loses_clearance() {
        // Folding the elbow sharply brings distal links toward proximal
        // ones: clearance must drop versus the extended pose.
        let robot = robots::iiwa14();
        let model = DynamicsModel::<f64>::new(&robot);
        let cm = CollisionModel::from_robot(&robot, 0.05);
        let extended = min_clearance(&model, &cm, &[0.0; 7]);
        let folded = min_clearance(&model, &cm, &[0.0, 2.8, 0.0, 2.9, 0.0, 2.8, 0.0]);
        assert!(
            folded < extended,
            "folded {folded} should be tighter than extended {extended}"
        );
    }

    #[test]
    fn clearances_are_continuous_in_q() {
        let robot = robots::iiwa14();
        let model = DynamicsModel::<f64>::new(&robot);
        let cm = CollisionModel::from_robot(&robot, 0.05);
        let q1 = vec![0.3; 7];
        let mut q2 = q1.clone();
        q2[2] += 1e-5;
        let a = min_clearance(&model, &cm, &q1);
        let b = min_clearance(&model, &cm, &q2);
        assert!((a - b).abs() < 1e-3);
    }

    #[test]
    fn fat_capsules_collide() {
        // Blow the radii up until even the extended pose interpenetrates.
        let robot = robots::iiwa14();
        let model = DynamicsModel::<f64>::new(&robot);
        let cm = CollisionModel::from_robot(&robot, 0.5);
        assert!(min_clearance(&model, &cm, &[0.0; 7]) < 0.0);
    }
}
