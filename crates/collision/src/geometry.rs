//! Geometric primitives and distance queries.

use robo_spatial::Vec3;

/// A capsule: the set of points within `radius` of the segment `[a, b]`.
///
/// Capsules are the standard high-fidelity collision proxy for robot links
/// (§7: approximate approaches "draw conservative ellipses around the
/// robot"; capsules are the tighter standard).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capsule {
    /// Segment start, in the owning frame.
    pub a: Vec3<f64>,
    /// Segment end.
    pub b: Vec3<f64>,
    /// Capsule radius.
    pub radius: f64,
}

impl Capsule {
    /// Creates a capsule.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative.
    pub fn new(a: Vec3<f64>, b: Vec3<f64>, radius: f64) -> Self {
        assert!(radius >= 0.0, "capsule radius must be non-negative");
        Self { a, b, radius }
    }

    /// Signed clearance to another capsule: positive when separated,
    /// negative when interpenetrating.
    pub fn distance(&self, other: &Capsule) -> f64 {
        segment_segment_distance(self.a, self.b, other.a, other.b) - self.radius - other.radius
    }
}

/// Closest distance between the segments `[p1, q1]` and `[p2, q2]`
/// (Ericson, *Real-Time Collision Detection* §5.1.9 — the reference the
/// paper itself cites for collision detection \[11\]).
pub fn segment_segment_distance(p1: Vec3<f64>, q1: Vec3<f64>, p2: Vec3<f64>, q2: Vec3<f64>) -> f64 {
    let d1 = q1 - p1;
    let d2 = q2 - p2;
    let r = p1 - p2;
    let a = d1.dot(d1);
    let e = d2.dot(d2);
    let f = d2.dot(r);
    const EPS: f64 = 1e-12;

    let (s, t);
    if a <= EPS && e <= EPS {
        // Both segments degenerate to points.
        return (p1 - p2).norm();
    }
    if a <= EPS {
        s = 0.0;
        t = (f / e).clamp(0.0, 1.0);
    } else {
        let c = d1.dot(r);
        if e <= EPS {
            t = 0.0;
            s = (-c / a).clamp(0.0, 1.0);
        } else {
            let b = d1.dot(d2);
            let denom = a * e - b * b;
            let s0 = if denom > EPS {
                ((b * f - c * e) / denom).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let t0 = (b * s0 + f) / e;
            if t0 < 0.0 {
                t = 0.0;
                s = (-c / a).clamp(0.0, 1.0);
            } else if t0 > 1.0 {
                t = 1.0;
                s = ((b - c) / a).clamp(0.0, 1.0);
            } else {
                t = t0;
                s = s0;
            }
        }
    }
    let c1 = p1 + d1.scale(s);
    let c2 = p2 + d2.scale(t);
    (c1 - c2).norm()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64, y: f64, z: f64) -> Vec3<f64> {
        Vec3::new(x, y, z)
    }

    #[test]
    fn parallel_segments() {
        let d = segment_segment_distance(
            v(0.0, 0.0, 0.0),
            v(1.0, 0.0, 0.0),
            v(0.0, 1.0, 0.0),
            v(1.0, 1.0, 0.0),
        );
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_segments_touch() {
        let d = segment_segment_distance(
            v(-1.0, 0.0, 0.0),
            v(1.0, 0.0, 0.0),
            v(0.0, -1.0, 0.0),
            v(0.0, 1.0, 0.0),
        );
        assert!(d < 1e-12);
    }

    #[test]
    fn skew_segments() {
        // Perpendicular skew lines separated by 2 along z.
        let d = segment_segment_distance(
            v(-1.0, 0.0, 0.0),
            v(1.0, 0.0, 0.0),
            v(0.0, -1.0, 2.0),
            v(0.0, 1.0, 2.0),
        );
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn endpoint_cases() {
        // Closest points at segment endpoints.
        let d = segment_segment_distance(
            v(0.0, 0.0, 0.0),
            v(1.0, 0.0, 0.0),
            v(3.0, 0.0, 0.0),
            v(4.0, 0.0, 0.0),
        );
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_points() {
        let d = segment_segment_distance(
            v(1.0, 1.0, 1.0),
            v(1.0, 1.0, 1.0),
            v(1.0, 1.0, 4.0),
            v(1.0, 1.0, 4.0),
        );
        assert!((d - 3.0).abs() < 1e-12);
        let d2 = segment_segment_distance(
            v(0.0, 0.0, 0.0),
            v(0.0, 0.0, 0.0),
            v(-1.0, 2.0, 0.0),
            v(1.0, 2.0, 0.0),
        );
        assert!((d2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let (p1, q1) = (v(0.1, -0.4, 0.9), v(1.2, 0.3, -0.2));
        let (p2, q2) = (v(-0.5, 0.8, 0.1), v(0.4, -0.9, 1.3));
        let ab = segment_segment_distance(p1, q1, p2, q2);
        let ba = segment_segment_distance(p2, q2, p1, q1);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn capsule_clearance_signs() {
        let a = Capsule::new(v(0.0, 0.0, 0.0), v(1.0, 0.0, 0.0), 0.3);
        let far = Capsule::new(v(0.0, 2.0, 0.0), v(1.0, 2.0, 0.0), 0.3);
        let near = Capsule::new(v(0.0, 0.5, 0.0), v(1.0, 0.5, 0.0), 0.3);
        assert!((a.distance(&far) - 1.4).abs() < 1e-12);
        assert!(a.distance(&near) < 0.0, "overlapping capsules");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let _ = Capsule::new(v(0.0, 0.0, 0.0), v(1.0, 0.0, 0.0), -0.1);
    }
}
