//! Capsule-based robot collision checking and its robomorphic template.
//!
//! §7: "the robomorphic computing design methodology can be applied to
//! other critical robotics applications that draw on robot morphology
//! information, including collision detection ... high-fidelity collision
//! detection requires kinematics implicitly". This crate is that target:
//!
//! * [`Capsule`] / [`segment_segment_distance`] — the geometric substrate
//!   (Ericson's algorithm, the paper's reference \[11\]);
//! * [`CollisionModel`] — per-link capsules plus the *morphology-pruned*
//!   pair list (adjacent links never checked);
//! * [`self_clearances`] / [`min_clearance`] — FK-driven self-collision
//!   queries;
//! * [`CollisionTemplate`] — step 1/step 2 of the methodology applied to
//!   this kernel: pair count → parallel distance units, limb depth → FK
//!   latency, comparator tree → min reduction.
//!
//! # Example
//!
//! ```
//! use robo_collision::{min_clearance, CollisionModel};
//! use robo_dynamics::DynamicsModel;
//! use robo_model::robots;
//!
//! let robot = robots::iiwa14();
//! let model = DynamicsModel::<f64>::new(&robot);
//! let capsules = CollisionModel::from_robot(&robot, 0.05);
//! assert!(min_clearance(&model, &capsules, &[0.0; 7]) > 0.0);
//! ```

#![warn(missing_docs)]

mod checker;
mod geometry;
mod template;

pub use checker::{min_clearance, self_clearances, CollisionModel, PairClearance};
pub use geometry::{segment_segment_distance, Capsule};
pub use template::{CollisionAccelerator, CollisionTemplate};
