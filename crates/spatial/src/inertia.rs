//! Spatial rigid-body inertia.

use crate::{Force, Mat3, Mat6, Motion, Scalar, Vec3};
use core::ops::Add;

/// The spatial inertia of a rigid body, expressed at the body frame origin.
///
/// Stored structurally as mass `m`, first moment of mass `h = m·c` (`c` the
/// center of mass), and the rotational inertia `Ī` about the body *origin*.
/// As a 6×6:
///
/// ```text
///     [ Ī     ĥ  ]
/// I = [ ĥᵀ   m·1 ]
/// ```
///
/// The fixed sparsity pattern of this matrix — dense symmetric 3×3 block, a
/// skew block, and a diagonal block — is what the paper's `I·` functional
/// units exploit: all entries are per-robot *constants*, so every multiplier
/// in the unit is a constant multiplier (§5.2).
///
/// # Examples
///
/// ```
/// use robo_spatial::{SpatialInertia, Mat3, Vec3, Motion};
///
/// let i = SpatialInertia::<f64>::from_com_params(
///     2.0,
///     Vec3::new(0.0, 0.0, 0.1),
///     Mat3::identity().scale(0.05),
/// );
/// let a = Motion::new(Vec3::zero(), Vec3::new(0.0, 0.0, 1.0));
/// let f = i.apply(a);
/// assert!((f.lin.z - 2.0).abs() < 1e-12); // F = m a for pure translation
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialInertia<S> {
    /// Mass.
    pub mass: S,
    /// First moment of mass `h = m·c`.
    pub h: Vec3<S>,
    /// Rotational inertia about the body origin (symmetric).
    pub ibar: Mat3<S>,
}

impl<S: Scalar> SpatialInertia<S> {
    /// Creates an inertia from mass, center of mass, and the rotational
    /// inertia about the *center of mass* (applies the parallel-axis
    /// theorem).
    pub fn from_com_params(mass: S, com: Vec3<S>, inertia_about_com: Mat3<S>) -> Self {
        // Parallel axis: Ī = I_c + m (cᵀc·1 − c cᵀ).
        let c2 = com.dot(com);
        let shift = (Mat3::identity().scale(c2) - Mat3::outer(com, com)).scale(mass);
        Self {
            mass,
            h: com.scale(mass),
            ibar: inertia_about_com + shift,
        }
    }

    /// The zero inertia (massless body).
    pub fn zero() -> Self {
        Self {
            mass: S::zero(),
            h: Vec3::zero(),
            ibar: Mat3::zero(),
        }
    }

    /// Converts between scalar types through `f64`.
    pub fn cast<T: Scalar>(self) -> SpatialInertia<T> {
        SpatialInertia {
            mass: T::from_f64(self.mass.to_f64()),
            h: self.h.cast(),
            ibar: self.ibar.cast(),
        }
    }

    /// Applies the inertia to a motion vector: `f = I v`.
    ///
    /// ```text
    /// f.ang = Ī ω + h × v
    /// f.lin = m v − h × ω
    /// ```
    #[inline]
    pub fn apply(&self, v: Motion<S>) -> Force<S> {
        Force::new(
            self.ibar.mul_vec(v.ang) + self.h.cross(v.lin),
            v.lin.scale(self.mass) - self.h.cross(v.ang),
        )
    }

    /// The dense 6×6 form (used to seed composite inertias in the CRBA).
    pub fn to_mat6(&self) -> Mat6<S> {
        let hhat = Mat3::skew(self.h);
        Mat6::from_blocks(
            self.ibar,
            hhat,
            hhat.transpose(),
            Mat3::identity().scale(self.mass),
        )
    }

    /// Center of mass `c = h / m`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the mass is zero.
    pub fn com(&self) -> Vec3<S> {
        debug_assert!(self.mass != S::zero(), "center of mass of massless body");
        let inv = S::one() / self.mass;
        self.h.scale(inv)
    }

    /// Kinetic energy `½ vᵀ I v` of a body moving with spatial velocity `v`.
    pub fn kinetic_energy(&self, v: Motion<S>) -> S {
        let half = S::from_f64(0.5);
        v.dot(self.apply(v)) * half
    }

    /// Re-expresses this inertia in the parent frame: given the transform
    /// `x = ᴮX_A` (parent A → child B) with the inertia in B coordinates,
    /// returns it in A coordinates (`I_A = Xᵀ I_B X`). Used to lump bodies
    /// joined by fixed joints.
    pub fn transformed_to_parent(&self, x: &crate::Transform<S>) -> SpatialInertia<S> {
        let xm = x.to_mat6();
        let dense = xm.transpose() * self.to_mat6() * xm;
        let (tl, tr, _, br) = dense.to_blocks();
        // Recover the structural form: mass from the lower-right m·1 block,
        // h from the skew upper-right block, Ī from the upper-left block.
        let third = S::from_f64(1.0 / 3.0);
        let mass = (br.m[0][0] + br.m[1][1] + br.m[2][2]) * third;
        let half = S::from_f64(0.5);
        let h = Vec3::new(
            (tr.m[2][1] - tr.m[1][2]) * half,
            (tr.m[0][2] - tr.m[2][0]) * half,
            (tr.m[1][0] - tr.m[0][1]) * half,
        );
        SpatialInertia { mass, h, ibar: tl }
    }
}

impl<S: Scalar> Add for SpatialInertia<S> {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            mass: self.mass + rhs.mass,
            h: self.h + rhs.h,
            ibar: self.ibar + rhs.ibar,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpatialInertia<f64> {
        SpatialInertia::from_com_params(
            3.0,
            Vec3::new(0.1, -0.05, 0.2),
            Mat3::from_rows(
                [0.02, 0.001, 0.0],
                [0.001, 0.03, 0.002],
                [0.0, 0.002, 0.025],
            ),
        )
    }

    #[test]
    fn dense_and_structural_agree() {
        let i = sample();
        let v = Motion::new(Vec3::new(0.4, -0.2, 0.9), Vec3::new(-0.3, 0.8, 0.1));
        let dense = i.to_mat6().mul_motion(v);
        let structural = i.apply(v);
        assert!((dense - structural).max_abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric() {
        let m = sample().to_mat6();
        assert!((m - m.transpose()).max_abs() < 1e-12);
    }

    #[test]
    fn kinetic_energy_positive() {
        let i = sample();
        let v = Motion::new(Vec3::new(1.0, 0.5, -0.2), Vec3::new(0.1, 0.1, 0.9));
        assert!(i.kinetic_energy(v) > 0.0);
        assert_eq!(i.kinetic_energy(Motion::zero()), 0.0);
    }

    #[test]
    fn com_round_trip() {
        let com = Vec3::new(0.1, -0.05, 0.2);
        let i = SpatialInertia::from_com_params(3.0, com, Mat3::identity().scale(0.01));
        assert!((i.com() - com).max_abs() < 1e-12);
    }

    #[test]
    fn pure_translation_newton() {
        let i = sample();
        let a = Motion::new(Vec3::zero(), Vec3::new(0.0, 0.0, 2.0));
        let f = i.apply(a);
        assert!((f.lin.z - 6.0).abs() < 1e-12); // F = m a = 3·2
    }

    #[test]
    fn transformed_inertia_preserves_dynamics() {
        // Applying the transformed inertia in frame A must equal moving the
        // motion to B, applying there, and moving the force back:
        // I_A v = Xᵀ (I_B (X v)).
        use crate::Transform;
        let i_b = sample();
        let x = Transform::new(
            Mat3::coord_rotation_y(0.7) * Mat3::coord_rotation_z(-0.3),
            Vec3::new(0.2, -0.4, 0.1),
        );
        let i_a = i_b.transformed_to_parent(&x);
        let v = Motion::new(Vec3::new(0.5, -0.2, 0.8), Vec3::new(-0.1, 0.6, 0.3));
        let direct = i_a.apply(v);
        let routed = x.tr_apply_force(i_b.apply(x.apply_motion(v)));
        assert!((direct - routed).max_abs() < 1e-12);
        // Mass is invariant under rigid transforms.
        assert!((i_a.mass - i_b.mass).abs() < 1e-12);
    }

    #[test]
    fn addition_is_composite_inertia() {
        let a = sample();
        let b = SpatialInertia::from_com_params(
            1.0,
            Vec3::new(0.0, 0.3, 0.0),
            Mat3::identity().scale(0.005),
        );
        let v = Motion::new(Vec3::new(0.2, 0.1, -0.4), Vec3::new(0.5, -0.6, 0.3));
        let combined = (a + b).apply(v);
        let separate = a.apply(v) + b.apply(v);
        assert!((combined - separate).max_abs() < 1e-12);
    }
}
