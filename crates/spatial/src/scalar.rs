//! The [`Scalar`] abstraction over arithmetic types.
//!
//! Everything in this workspace — spatial algebra, rigid body dynamics, the
//! simulated accelerator — is generic over a scalar type so that the same
//! algorithms can run in `f64` (reference), `f32`, or the Q-format
//! fixed-point types the hardware accelerator uses (see the `robo-fixed`
//! crate). This mirrors the paper's Figure 12 experiment, which compares
//! optimization convergence across numeric types.

use crate::lanes::{Lanes, SERVE_LANES};
use crate::tier::ExecTier;
use crate::wide::{WideVisit, WidthOf};
use core::fmt::{Debug, Display};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An arithmetic scalar usable throughout the dynamics and accelerator code.
///
/// Implementations exist for [`f32`], [`f64`], and the fixed-point types in
/// `robo-fixed`. Transcendental functions default to a round trip through
/// `f64`; this is deliberate and faithful to the paper, where the `sin`/`cos`
/// of joint positions are *inputs* to the accelerator ("cached from an
/// earlier stage of the optimization algorithm", §5.1) rather than computed
/// in fixed point on the datapath.
///
/// # Examples
///
/// ```
/// use robo_spatial::Scalar;
///
/// fn hypot_sq<S: Scalar>(a: S, b: S) -> S {
///     a * a + b * b
/// }
///
/// assert_eq!(hypot_sq(3.0_f64, 4.0_f64), 25.0);
/// ```
pub trait Scalar:
    Copy
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
{
    /// Human-readable name of the numeric type, used in experiment reports
    /// (e.g. `"f32"`, `"Fixed{16,16}"`).
    fn name() -> String;

    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Converts from `f64`, rounding to the nearest representable value.
    fn from_f64(value: f64) -> Self;

    /// Converts to `f64` exactly (all implementations are ≤ 64 bits wide).
    fn to_f64(self) -> f64;

    /// Smallest positive representable increment near 1.0, used by tests to
    /// scale error tolerances to the numeric type.
    fn resolution() -> f64;

    /// Absolute value.
    fn abs(self) -> Self {
        if self < Self::zero() {
            -self
        } else {
            self
        }
    }

    /// The larger of `self` and `other`.
    fn max(self, other: Self) -> Self {
        if self < other {
            other
        } else {
            self
        }
    }

    /// The smaller of `self` and `other`.
    fn min(self, other: Self) -> Self {
        if other < self {
            other
        } else {
            self
        }
    }

    /// Square root. Defaults to a round trip through `f64`.
    fn sqrt(self) -> Self {
        Self::from_f64(self.to_f64().sqrt())
    }

    /// Sine. Defaults to a round trip through `f64` (see trait docs).
    fn sin(self) -> Self {
        Self::from_f64(self.to_f64().sin())
    }

    /// Cosine. Defaults to a round trip through `f64` (see trait docs).
    fn cos(self) -> Self {
        Self::from_f64(self.to_f64().cos())
    }

    /// Whether the value is finite and arithmetic on it has not overflowed.
    ///
    /// Fixed-point types return `false` once a computation has saturated;
    /// floats return [`f64::is_finite`].
    fn is_valid(self) -> bool {
        self.to_f64().is_finite()
    }

    /// Sum of products `Σ aᵢ·bᵢ` with a *wide accumulator*.
    ///
    /// The default rounds after every multiply (`fold` of `*` and `+`) —
    /// the behavior of discrete multiplier/adder trees. Fixed-point types
    /// override [`Scalar::dot_accumulate_from`] to accumulate the
    /// full-width products and round once, modeling a DSP-block MAC cascade
    /// (e.g. the 48-bit accumulators of Xilinx DSP48 slices) — the same dot
    /// product, one rounding error instead of `n`.
    fn dot_accumulate(terms: &[(Self, Self)]) -> Self {
        Self::dot_accumulate_from(terms.iter().copied())
    }

    /// Iterator form of [`Scalar::dot_accumulate`] — the override point for
    /// types with a genuinely wide accumulator. The iterator form lets
    /// wide-lane wrappers feed one lane's terms through without building a
    /// per-lane slice.
    fn dot_accumulate_from(terms: impl Iterator<Item = (Self, Self)>) -> Self {
        terms.fold(Self::zero(), |acc, (a, b)| acc + a * b)
    }

    /// The lane width this scalar's wide serving path uses on `tier` —
    /// always the `WIDTH` of the type [`Scalar::dispatch_wide`] selects.
    ///
    /// The default (and the only behavior for fixed-point types, which
    /// have no native vector unit on commodity CPUs) is the portable
    /// [`SERVE_LANES`] width regardless of tier; `f32`/`f64` override
    /// this to match their native lane types.
    fn preferred_lanes(tier: ExecTier) -> usize {
        let _ = tier;
        SERVE_LANES
    }

    /// Runs `visitor` instantiated at the wide lane type this scalar
    /// serves batches with on `tier` — the single runtime→compile-time
    /// bridge behind every tiered batch path.
    ///
    /// The default serves the portable [`Lanes<Self, SERVE_LANES>`]
    /// whatever the tier; `f32`/`f64` override it to select the native
    /// SIMD types of the `simd` module where the target architecture has
    /// them. Requesting a tier the architecture lacks degrades to the
    /// portable fallback (never an error: all tiers are bit-identical).
    fn dispatch_wide<Vis: WideVisit<Self>>(tier: ExecTier, visitor: Vis) -> Vis::Out {
        let _ = tier;
        visitor.visit::<Lanes<Self, SERVE_LANES>>()
    }
}

macro_rules! impl_scalar_float {
    ($t:ty, $name:literal, $res:expr $(, $extra:item)*) => {
        impl Scalar for $t {
            fn name() -> String {
                $name.to_owned()
            }

            #[inline]
            fn zero() -> Self {
                0.0
            }

            #[inline]
            fn one() -> Self {
                1.0
            }

            #[inline]
            fn from_f64(value: f64) -> Self {
                value as $t
            }

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }

            fn resolution() -> f64 {
                $res
            }

            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }

            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }

            #[inline]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }

            #[inline]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }

            #[inline]
            fn is_valid(self) -> bool {
                self.is_finite()
            }

            fn preferred_lanes(tier: ExecTier) -> usize {
                Self::dispatch_wide(tier, WidthOf)
            }

            $($extra)*
        }
    };
}

impl_scalar_float!(
    f32,
    "f32",
    f32::EPSILON as f64,
    /// `f32` serves SSE/NEON 128-bit vectors (4 lanes) and AVX2 256-bit
    /// bundles (8 lanes) where the architecture has them; the JIT tier
    /// rides on whatever lane type the host natively detects.
    fn dispatch_wide<Vis: WideVisit<Self>>(tier: ExecTier, visitor: Vis) -> Vis::Out {
        match tier {
            #[cfg(target_arch = "x86_64")]
            ExecTier::Sse2 => visitor.visit::<crate::simd::F32x4>(),
            #[cfg(target_arch = "x86_64")]
            ExecTier::Avx2 => visitor.visit::<crate::simd::F32x8>(),
            #[cfg(target_arch = "aarch64")]
            ExecTier::Neon => visitor.visit::<crate::simd::F32x4>(),
            // `detect()` never returns `Jit`, so this recursion is one
            // level deep.
            ExecTier::Jit => Self::dispatch_wide(ExecTier::detect(), visitor),
            _ => visitor.visit::<Lanes<f32, SERVE_LANES>>(),
        }
    }
);
impl_scalar_float!(
    f64,
    "f64",
    f64::EPSILON,
    /// `f64` serves SSE2/NEON 128-bit vectors (2 lanes) and AVX2 256-bit
    /// bundles (4 lanes) where the architecture has them; the JIT tier
    /// rides on whatever lane type the host natively detects.
    fn dispatch_wide<Vis: WideVisit<Self>>(tier: ExecTier, visitor: Vis) -> Vis::Out {
        match tier {
            #[cfg(target_arch = "x86_64")]
            ExecTier::Sse2 => visitor.visit::<crate::simd::F64x2>(),
            #[cfg(target_arch = "x86_64")]
            ExecTier::Avx2 => visitor.visit::<crate::simd::F64x4>(),
            #[cfg(target_arch = "aarch64")]
            ExecTier::Neon => visitor.visit::<crate::simd::F64x2>(),
            // `detect()` never returns `Jit`, so this recursion is one
            // level deep.
            ExecTier::Jit => Self::dispatch_wide(ExecTier::detect(), visitor),
            _ => visitor.visit::<Lanes<f64, SERVE_LANES>>(),
        }
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_identities() {
        assert_eq!(f64::zero(), 0.0);
        assert_eq!(f64::one(), 1.0);
        assert_eq!(<f32 as Scalar>::name(), "f32");
        assert_eq!(<f64 as Scalar>::name(), "f64");
    }

    #[test]
    fn conversion_round_trip() {
        let x = 1.25_f64;
        assert_eq!(f32::from_f64(x).to_f64(), 1.25);
        assert_eq!(f64::from_f64(x).to_f64(), 1.25);
    }

    #[test]
    fn default_abs_min_max() {
        assert_eq!(Scalar::abs(-2.0_f64), 2.0);
        assert_eq!(Scalar::max(1.0_f64, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0_f64, 2.0), 1.0);
    }

    #[test]
    fn trig_matches_std() {
        let x = 0.7_f64;
        assert!((Scalar::sin(x) - x.sin()).abs() < 1e-15);
        assert!((Scalar::cos(x) - x.cos()).abs() < 1e-15);
    }

    #[test]
    fn validity() {
        assert!(1.0_f64.is_valid());
        assert!(!f64::NAN.is_valid());
        assert!(!f32::INFINITY.is_valid());
    }
}
