//! [`ExecTier`]: runtime-detected SIMD execution tiers.
//!
//! The paper's accelerator is specialized at *design* time; the software
//! serving paths in this workspace are specialized at *run* time instead,
//! by probing the host CPU once and routing every wide batch path through
//! the fastest native lane type the host supports. `ExecTier` names the
//! tiers; [`Scalar::dispatch_wide`](crate::Scalar::dispatch_wide) maps a
//! tier to a concrete wide scalar type per element type.
//!
//! Every tier is *bit-identical* to scalar execution (see the `simd`
//! module docs), so tier selection is purely a throughput decision — a
//! host without vector features silently serves the portable
//! [`Lanes`](crate::Lanes) fallback and produces the same bits.

use core::fmt;
use core::str::FromStr;

/// A SIMD execution tier, detected at runtime or forced by the caller.
///
/// Tier selection never changes results: all tiers are bit-identical to
/// scalar execution, so forcing a tier the host cannot accelerate (or
/// that does not exist on the target architecture) silently degrades to
/// portable lane arithmetic at the same width.
///
/// # Examples
///
/// ```
/// use robo_spatial::ExecTier;
///
/// let tier = ExecTier::detect();
/// assert!(ExecTier::ALL.contains(&tier));
/// assert_eq!("auto".parse::<ExecTier>().unwrap(), tier);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecTier {
    /// Portable `Lanes<S, W>` arithmetic — the universal fallback, relying
    /// on autovectorization only. Always available.
    Portable,
    /// x86-64 128-bit vectors (SSE2 is part of the x86-64 baseline, so
    /// this tier is available on every x86-64 host).
    Sse2,
    /// x86-64 256-bit vectors, used when the host reports AVX2 support.
    Avx2,
    /// AArch64 128-bit vectors (NEON is part of the AArch64 baseline).
    Neon,
    /// The copy-and-patch template JIT (`robo_codegen::jit`): scheduled
    /// superinstruction blocks stitched into one contiguous native
    /// function, on top of the host's native lane width. x86-64 Linux
    /// only; an explicit opt-in — [`ExecTier::detect`] never returns it.
    Jit,
}

impl ExecTier {
    /// Every tier, in ascending width order (the JIT rides on the
    /// detected native width and sorts last), for CLI help and reports.
    pub const ALL: [ExecTier; 5] = [
        ExecTier::Portable,
        ExecTier::Sse2,
        ExecTier::Avx2,
        ExecTier::Neon,
        ExecTier::Jit,
    ];

    /// Probes the host CPU and returns the widest supported tier.
    ///
    /// x86-64 hosts report [`ExecTier::Avx2`] when the CPU advertises
    /// AVX2 and [`ExecTier::Sse2`] otherwise; AArch64 hosts report
    /// [`ExecTier::Neon`]; everything else gets [`ExecTier::Portable`].
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                ExecTier::Avx2
            } else {
                ExecTier::Sse2
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            ExecTier::Neon
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            ExecTier::Portable
        }
    }

    /// Whether this tier can actually run natively on the current host.
    ///
    /// [`ExecTier::Portable`] is always supported; the native tiers
    /// require the matching architecture (and, for AVX2, the runtime
    /// feature bit).
    pub fn supported_on_host(self) -> bool {
        match self {
            ExecTier::Portable => true,
            ExecTier::Sse2 => cfg!(target_arch = "x86_64"),
            ExecTier::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            ExecTier::Neon => cfg!(target_arch = "aarch64"),
            // The template JIT emits x86-64 machine code into an
            // anonymous mapping; it needs the Linux mmap/mprotect
            // surface. An mmap failure at emit time still degrades to
            // the threaded tape inside `robo-codegen`.
            ExecTier::Jit => cfg!(all(target_arch = "x86_64", target_os = "linux")),
        }
    }

    /// This tier if the host supports it, otherwise the next-widest tier
    /// that the host does support.
    ///
    /// Used by plan constructors so that an explicitly requested tier
    /// (e.g. `--tier avx2` from the CLI) degrades gracefully instead of
    /// erroring on hosts without the feature.
    pub fn clamp_to_host(self) -> Self {
        if self.supported_on_host() {
            return self;
        }
        match self {
            // A JIT host is always an x86-64 host, so degrade through
            // the native SIMD ladder rather than straight to portable.
            ExecTier::Jit => ExecTier::Avx2.clamp_to_host(),
            ExecTier::Avx2 if ExecTier::Sse2.supported_on_host() => ExecTier::Sse2,
            _ => ExecTier::Portable,
        }
    }

    /// The `f64` SIMD lane width this tier serves wide batches at: the
    /// width [`Scalar::dispatch_wide`](crate::Scalar::dispatch_wide)
    /// selects for `f64` (AVX2 `F64x4` → 4, SSE2/NEON 128-bit → 2, the
    /// portable fallback → [`SERVE_LANES`](crate::SERVE_LANES)).
    ///
    /// Recorded as trace/report lane metadata so artifacts state the
    /// width their throughput numbers were measured at.
    pub fn f64_lane_width(self) -> usize {
        match self {
            ExecTier::Portable => crate::SERVE_LANES,
            ExecTier::Sse2 | ExecTier::Neon => 2,
            ExecTier::Avx2 => 4,
            // The JIT stitches blocks at whatever lane width the host
            // natively serves — the detected tier's width.
            ExecTier::Jit => ExecTier::detect().f64_lane_width(),
        }
    }

    /// The lower-case tier name used by the CLI and bench reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecTier::Portable => "portable",
            ExecTier::Sse2 => "sse2",
            ExecTier::Avx2 => "avx2",
            ExecTier::Neon => "neon",
            ExecTier::Jit => "jit",
        }
    }
}

impl fmt::Display for ExecTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing an [`ExecTier`] name: the input was not one of the
/// valid tier names. [`Display`](fmt::Display) lists every accepted name
/// so CLI surfaces can show it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTierError {
    input: String,
}

impl ParseTierError {
    /// The unrecognized tier name, exactly as given.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Every name [`ExecTier::from_str`] accepts, in help order.
    pub fn valid_names() -> impl Iterator<Item = &'static str> {
        ["auto"]
            .into_iter()
            .chain(ExecTier::ALL.map(ExecTier::as_str))
    }
}

impl fmt::Display for ParseTierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown execution tier `{}` (expected ", self.input)?;
        for (i, name) in Self::valid_names().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            f.write_str(name)?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseTierError {}

impl FromStr for ExecTier {
    type Err = ParseTierError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "portable" => Ok(ExecTier::Portable),
            "sse2" => Ok(ExecTier::Sse2),
            "avx2" => Ok(ExecTier::Avx2),
            "neon" => Ok(ExecTier::Neon),
            "jit" => Ok(ExecTier::Jit),
            "auto" => Ok(ExecTier::detect()),
            other => Err(ParseTierError {
                input: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_supported_and_stable() {
        let tier = ExecTier::detect();
        assert!(tier.supported_on_host());
        assert_eq!(tier, ExecTier::detect());
        assert_eq!(tier.clamp_to_host(), tier);
    }

    #[test]
    fn round_trips_through_strings() {
        for tier in ExecTier::ALL {
            assert_eq!(tier.as_str().parse::<ExecTier>(), Ok(tier));
            assert_eq!(tier.to_string(), tier.as_str());
        }
        assert_eq!("auto".parse::<ExecTier>(), Ok(ExecTier::detect()));
        assert!("avx512".parse::<ExecTier>().is_err());
    }

    #[test]
    fn clamping_always_lands_on_a_supported_tier() {
        for tier in ExecTier::ALL {
            assert!(tier.clamp_to_host().supported_on_host());
        }
    }

    #[test]
    fn portable_is_always_supported() {
        assert!(ExecTier::Portable.supported_on_host());
    }

    #[test]
    fn detect_never_returns_the_jit_tier() {
        // The JIT is an explicit opt-in: `auto` must keep resolving to a
        // plain SIMD tier so trace metadata and defaults stay stable.
        assert_ne!(ExecTier::detect(), ExecTier::Jit);
    }

    #[test]
    fn jit_clamps_onto_the_native_simd_ladder() {
        let clamped = ExecTier::Jit.clamp_to_host();
        assert!(clamped.supported_on_host());
        if !ExecTier::Jit.supported_on_host() {
            assert_ne!(clamped, ExecTier::Jit);
        }
        // Whatever it lands on serves the same f64 width as detect()
        // unless it had to degrade below the detected tier.
        assert_eq!(
            ExecTier::Jit.f64_lane_width(),
            ExecTier::detect().f64_lane_width()
        );
    }

    #[test]
    fn unknown_tier_error_lists_the_valid_names() {
        let err = "avx512".parse::<ExecTier>().unwrap_err();
        assert_eq!(err.input(), "avx512");
        assert_eq!(
            err.to_string(),
            "unknown execution tier `avx512` (expected auto | portable | sse2 | avx2 | neon | jit)"
        );
        // Every advertised name actually parses.
        for name in ParseTierError::valid_names() {
            assert!(name.parse::<ExecTier>().is_ok(), "`{name}` must parse");
        }
    }
}
