//! [`Lanes`]: a portable wide scalar evaluating `W` independent states per
//! operation.
//!
//! The paper's accelerator wins partly by exploiting data-level parallelism
//! the CPU leaves idle; `Lanes<S, W>` recovers some of it in software.
//! Every generic kernel in this workspace — the RNEA and gradient workspace
//! kernels, the functional accelerator simulation, the compiled netlist
//! tapes — is written over [`Scalar`], so instantiating them at
//! `Lanes<S, W>` runs `W` states through the *same* instruction stream at
//! once, with elementwise inner loops the compiler autovectorizes (the
//! structure-of-arrays serving path GRiD applies to batched rigid-body
//! gradients).
//!
//! # Per-lane bit-identity
//!
//! A `Lanes<S, W>` computation is bit-identical, lane for lane, to `W`
//! independent scalar runs, because:
//!
//! * every arithmetic op and every overridden function (`abs`, `min`,
//!   `max`, `sqrt`, `sin`, `cos`, [`Scalar::dot_accumulate`]) is exactly
//!   elementwise;
//! * [`Scalar::from_f64`] splats, so plan constants (model inertias,
//!   netlist coefficient tables) are identical in every lane;
//! * comparisons ([`PartialOrd`]) use the *product order*: a lane-wise
//!   branch can only be taken when **all** lanes agree, and the few
//!   value-dependent branches in the kernels (the zero-skip in
//!   `MatN::mul_mat`) are no-ops for the lanes that would have skipped.
//!
//! The one intentional asymmetry: [`Scalar::to_f64`] returns lane 0 (a wide
//! value has no single `f64` reduction); batch plumbing reads lanes out
//! explicitly via [`Lanes::lane`].

use crate::scalar::Scalar;
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The serving width used by the built-in wide batch paths (`Lanes<S, 4>`
/// covers one AVX2 register of `f64` and keeps tail overhead low for the
/// paper's trajectory batch sizes).
pub const SERVE_LANES: usize = 4;

/// A fixed-width bundle of `W` independent scalar values, itself a
/// [`Scalar`].
///
/// # Examples
///
/// ```
/// use robo_spatial::{Lanes, Scalar};
///
/// let a = Lanes::<f64, 4>::new([1.0, 2.0, 3.0, 4.0]);
/// let b = Lanes::<f64, 4>::splat(10.0);
/// let c = a * b + a;
/// assert_eq!(c.lane(2), 33.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lanes<S, const W: usize>([S; W]);

impl<S: Scalar, const W: usize> Lanes<S, W> {
    /// Bundles `W` per-state values (lane `l` holds state `l`'s value).
    pub fn new(lanes: [S; W]) -> Self {
        Self(lanes)
    }

    /// Broadcasts one value into every lane — how plan constants enter the
    /// wide domain.
    pub fn splat(value: S) -> Self {
        Self([value; W])
    }

    /// Builds a bundle lane by lane.
    pub fn from_fn(f: impl FnMut(usize) -> S) -> Self {
        Self(core::array::from_fn(f))
    }

    /// The value in lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= W`.
    pub fn lane(&self, i: usize) -> S {
        self.0[i]
    }

    /// Overwrites lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= W`.
    pub fn set_lane(&mut self, i: usize, value: S) {
        self.0[i] = value;
    }

    /// All lanes, in order.
    pub fn lanes(&self) -> &[S; W] {
        &self.0
    }

    #[inline]
    fn map(self, f: impl Fn(S) -> S) -> Self {
        Self(core::array::from_fn(|i| f(self.0[i])))
    }

    #[inline]
    fn zip(self, rhs: Self, f: impl Fn(S, S) -> S) -> Self {
        Self(core::array::from_fn(|i| f(self.0[i], rhs.0[i])))
    }
}

impl<S: Scalar, const W: usize> Default for Lanes<S, W> {
    fn default() -> Self {
        Self::splat(S::default())
    }
}

impl<S: Scalar, const W: usize> fmt::Display for Lanes<S, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// The product order: `Less`/`Greater` only when every lane agrees (lanes
/// comparing `Equal` go along with either side), `None` when lanes
/// disagree. Value-dependent branches in generic code therefore fire only
/// when they would fire in every scalar run.
impl<S: Scalar, const W: usize> PartialOrd for Lanes<S, W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        let mut has_lt = false;
        let mut has_gt = false;
        for i in 0..W {
            match self.0[i].partial_cmp(&other.0[i])? {
                Ordering::Less => has_lt = true,
                Ordering::Greater => has_gt = true,
                Ordering::Equal => {}
            }
        }
        match (has_lt, has_gt) {
            (false, false) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (true, true) => None,
        }
    }
}

macro_rules! impl_lanes_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident) => {
        impl<S: Scalar, const W: usize> $trait for Lanes<S, W> {
            type Output = Self;

            #[inline]
            fn $method(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a.$method(b))
            }
        }

        impl<S: Scalar, const W: usize> $assign_trait for Lanes<S, W> {
            #[inline]
            fn $assign_method(&mut self, rhs: Self) {
                *self = self.$method(rhs);
            }
        }
    };
}

impl_lanes_binop!(Add, add, AddAssign, add_assign);
impl_lanes_binop!(Sub, sub, SubAssign, sub_assign);
impl_lanes_binop!(Mul, mul, MulAssign, mul_assign);
impl_lanes_binop!(Div, div, DivAssign, div_assign);

impl<S: Scalar, const W: usize> Neg for Lanes<S, W> {
    type Output = Self;

    #[inline]
    fn neg(self) -> Self {
        self.map(|a| -a)
    }
}

impl<S: Scalar, const W: usize> Scalar for Lanes<S, W> {
    fn name() -> String {
        format!("Lanes<{}, {W}>", S::name())
    }

    #[inline]
    fn zero() -> Self {
        Self::splat(S::zero())
    }

    #[inline]
    fn one() -> Self {
        Self::splat(S::one())
    }

    /// Broadcasts, so constants cast at plan-build time are identical in
    /// every lane.
    #[inline]
    fn from_f64(value: f64) -> Self {
        Self::splat(S::from_f64(value))
    }

    /// Lane 0 — a wide value has no single `f64` reduction; batch plumbing
    /// extracts lanes explicitly.
    #[inline]
    fn to_f64(self) -> f64 {
        self.0[0].to_f64()
    }

    fn resolution() -> f64 {
        S::resolution()
    }

    #[inline]
    fn abs(self) -> Self {
        self.map(S::abs)
    }

    #[inline]
    fn max(self, other: Self) -> Self {
        self.zip(other, S::max)
    }

    #[inline]
    fn min(self, other: Self) -> Self {
        self.zip(other, S::min)
    }

    #[inline]
    fn sqrt(self) -> Self {
        self.map(S::sqrt)
    }

    #[inline]
    fn sin(self) -> Self {
        self.map(S::sin)
    }

    #[inline]
    fn cos(self) -> Self {
        self.map(S::cos)
    }

    fn is_valid(self) -> bool {
        self.0.iter().all(|v| v.is_valid())
    }

    /// Per-lane wide accumulation: lane `l` sees exactly the scalar type's
    /// [`Scalar::dot_accumulate`] over its own terms (one rounding for
    /// fixed point), keeping the `Wide` accumulation mode bit-identical to
    /// scalar runs.
    fn dot_accumulate(terms: &[(Self, Self)]) -> Self {
        Self(core::array::from_fn(|l| {
            S::dot_accumulate_from(terms.iter().map(|(a, b)| (a.0[l], b.0[l])))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_elementwise() {
        let a = Lanes::<f64, 4>::new([1.0, -2.0, 3.5, 0.0]);
        let b = Lanes::<f64, 4>::new([0.5, 4.0, -1.0, 2.0]);
        for i in 0..4 {
            assert_eq!((a + b).lane(i), a.lane(i) + b.lane(i));
            assert_eq!((a - b).lane(i), a.lane(i) - b.lane(i));
            assert_eq!((a * b).lane(i), a.lane(i) * b.lane(i));
            assert_eq!((a / b).lane(i), a.lane(i) / b.lane(i));
            assert_eq!((-a).lane(i), -a.lane(i));
            assert_eq!(a.abs().lane(i), a.lane(i).abs());
            assert_eq!(a.sin().lane(i), a.lane(i).sin());
        }
    }

    #[test]
    fn from_f64_splats_and_to_f64_reads_lane_zero() {
        let x = Lanes::<f32, 8>::from_f64(0.3);
        assert!(x.lanes().iter().all(|v| *v == 0.3_f32));
        assert_eq!(x.to_f64(), f64::from(0.3_f32));
    }

    #[test]
    fn product_order_requires_agreement() {
        let lo = Lanes::<f64, 2>::new([1.0, 2.0]);
        let hi = Lanes::<f64, 2>::new([3.0, 4.0]);
        let mixed = Lanes::<f64, 2>::new([5.0, 0.0]);
        assert!(lo < hi);
        assert!(hi > lo);
        assert_eq!(lo.partial_cmp(&lo), Some(Ordering::Equal));
        assert_eq!(lo.partial_cmp(&mixed), None);
        // Equal lanes defer to the rest.
        let tied = Lanes::<f64, 2>::new([1.0, 3.0]);
        assert!(lo < tied);
    }

    #[test]
    fn nan_lanes_compare_as_none_and_invalidate() {
        let a = Lanes::<f64, 2>::new([1.0, f64::NAN]);
        let b = Lanes::<f64, 2>::splat(1.0);
        assert_eq!(a.partial_cmp(&b), None);
        assert!(!a.is_valid());
        assert!(b.is_valid());
    }

    #[test]
    fn dot_accumulate_matches_scalar_per_lane() {
        let terms: Vec<(Lanes<f64, 2>, Lanes<f64, 2>)> = (0..5)
            .map(|k| {
                let k = f64::from(k);
                (
                    Lanes::new([0.3 * k, -1.1 * k]),
                    Lanes::new([2.0 - k, 0.7 * k]),
                )
            })
            .collect();
        let wide = Lanes::dot_accumulate(&terms);
        for l in 0..2 {
            let scalar: Vec<(f64, f64)> =
                terms.iter().map(|(a, b)| (a.lane(l), b.lane(l))).collect();
            assert_eq!(wide.lane(l), f64::dot_accumulate(&scalar));
        }
    }
}
