//! Spatial (6-D) vector algebra for rigid body dynamics.
//!
//! This crate is the mathematical substrate of the robomorphic-computing
//! workspace. It provides, generically over a [`Scalar`] type:
//!
//! * [`Vec3`] / [`Mat3`] — ordinary 3-D linear algebra;
//! * [`Motion`] / [`Force`] — Featherstone spatial vectors with the motion
//!   (`×`) and force (`×*`) cross products;
//! * [`Transform`] — Plücker coordinate transforms stored structurally as a
//!   rotation plus translation (the `ᵢX_λᵢ` matrices of the paper, whose
//!   sparsity patterns the accelerator prunes);
//! * [`SpatialInertia`] — rigid-body inertias (the `Iᵢ` matrices, whose
//!   entries become hardware constants);
//! * [`Mat6`] / [`MatN`] — dense matrices for composite inertias, the
//!   joint-space mass matrix, and its LDLᵀ-based inverse.
//!
//! The [`Scalar`] trait is implemented by `f32`/`f64` here and by the
//! Q-format fixed-point types in the `robo-fixed` crate, so every algorithm
//! built on this crate can run in the accelerator's arithmetic.
//!
//! # Example
//!
//! ```
//! use robo_spatial::{Mat3, Motion, Transform, Vec3};
//!
//! // Velocity propagation across a joint: v_child = X v_parent + S q̇.
//! let x = Transform::<f64>::new(Mat3::coord_rotation_z(0.3), Vec3::new(0.0, 0.0, 0.4));
//! let v_parent = Motion::new(Vec3::new(0.0, 0.0, 1.0), Vec3::zero());
//! let s_qd = Motion::new(Vec3::new(0.0, 0.0, 2.0), Vec3::zero());
//! let v_child = x.apply_motion(v_parent) + s_qd;
//! assert!((v_child.ang.z - 3.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
// Index-based loops over fixed-size matrix dimensions are clearer than
// iterator chains in this numerical code.
#![allow(clippy::needless_range_loop)]

mod inertia;
mod lanes;
mod mat3;
mod mat6;
mod matn;
mod motion;
mod scalar;
pub mod simd;
mod tier;
mod transform;
mod vec3;
mod wide;

pub use inertia::SpatialInertia;
pub use lanes::{Lanes, SERVE_LANES};
pub use mat3::Mat3;
pub use mat6::Mat6;
pub use matn::{FactorizeError, Ldlt, MatN};
pub use motion::{Force, Motion};
pub use scalar::Scalar;
pub use tier::{ExecTier, ParseTierError};
pub use transform::Transform;
pub use vec3::Vec3;
pub use wide::{WideScalar, WideVisit};
