//! Spatial (6-D) motion and force vectors.
//!
//! Following Featherstone's convention, a spatial vector stacks an angular
//! 3-vector on top of a linear 3-vector. [`Motion`] vectors carry velocities
//! and accelerations; [`Force`] vectors carry forces and momenta. Keeping
//! them as distinct newtypes prevents the classic bug of applying a motion
//! transform to a force (they transform differently).

use crate::{Scalar, Vec3};
use core::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A spatial *motion* vector `[ω; v]` (angular on top, linear below).
///
/// # Examples
///
/// ```
/// use robo_spatial::{Motion, Vec3};
///
/// let v = Motion::new(Vec3::new(0.0, 0.0, 1.0), Vec3::zero());
/// // A pure rotation crossed with itself vanishes.
/// assert_eq!(v.cross_motion(v), Motion::zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Motion<S> {
    /// Angular component ω.
    pub ang: Vec3<S>,
    /// Linear component v.
    pub lin: Vec3<S>,
}

/// A spatial *force* vector `[n; f]` (moment on top, linear force below).
///
/// # Examples
///
/// ```
/// use robo_spatial::{Force, Vec3};
///
/// let f = Force::new(Vec3::zero(), Vec3::new(0.0, 0.0, -9.81));
/// assert_eq!((f + f).lin.z, -19.62);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Force<S> {
    /// Angular component (moment) n.
    pub ang: Vec3<S>,
    /// Linear component f.
    pub lin: Vec3<S>,
}

macro_rules! impl_spatial_common {
    ($t:ident) => {
        impl<S: Scalar> $t<S> {
            /// Creates a spatial vector from its angular and linear parts.
            #[inline]
            pub fn new(ang: Vec3<S>, lin: Vec3<S>) -> Self {
                Self { ang, lin }
            }

            /// The zero vector.
            #[inline]
            pub fn zero() -> Self {
                Self::new(Vec3::zero(), Vec3::zero())
            }

            /// Builds from a 6-array `[ωx, ωy, ωz, vx, vy, vz]`.
            pub fn from_array(a: [S; 6]) -> Self {
                Self::new(Vec3::new(a[0], a[1], a[2]), Vec3::new(a[3], a[4], a[5]))
            }

            /// The components as a 6-array, angular first.
            pub fn to_array(self) -> [S; 6] {
                [
                    self.ang.x, self.ang.y, self.ang.z, self.lin.x, self.lin.y, self.lin.z,
                ]
            }

            /// Converts between scalar types through `f64`.
            pub fn cast<T: Scalar>(self) -> $t<T> {
                $t::new(self.ang.cast(), self.lin.cast())
            }

            /// Scales both parts by `s`.
            #[inline]
            pub fn scale(self, s: S) -> Self {
                Self::new(self.ang.scale(s), self.lin.scale(s))
            }

            /// Largest absolute component, as `f64`.
            pub fn max_abs(self) -> f64 {
                self.ang.max_abs().max(self.lin.max_abs())
            }

            /// Whether every component is finite / non-saturated.
            pub fn is_valid(self) -> bool {
                self.ang.is_valid() && self.lin.is_valid()
            }
        }

        impl<S: Scalar> Add for $t<S> {
            type Output = Self;

            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self::new(self.ang + rhs.ang, self.lin + rhs.lin)
            }
        }

        impl<S: Scalar> Sub for $t<S> {
            type Output = Self;

            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self::new(self.ang - rhs.ang, self.lin - rhs.lin)
            }
        }

        impl<S: Scalar> Neg for $t<S> {
            type Output = Self;

            #[inline]
            fn neg(self) -> Self {
                Self::new(-self.ang, -self.lin)
            }
        }

        impl<S: Scalar> AddAssign for $t<S> {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl<S: Scalar> SubAssign for $t<S> {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }
    };
}

impl_spatial_common!(Motion);
impl_spatial_common!(Force);

impl<S: Scalar> Motion<S> {
    /// Spatial motion cross product `self × m`:
    ///
    /// ```text
    /// [ ω̂   0 ] [m.ang]   [ ω × m.ang             ]
    /// [ v̂   ω̂ ] [m.lin] = [ v × m.ang + ω × m.lin ]
    /// ```
    #[inline]
    pub fn cross_motion(self, m: Motion<S>) -> Motion<S> {
        Motion::new(
            self.ang.cross(m.ang),
            self.lin.cross(m.ang) + self.ang.cross(m.lin),
        )
    }

    /// Spatial force cross product `self ×* f`:
    ///
    /// ```text
    /// [ ω̂   v̂ ] [f.ang]   [ ω × f.ang + v × f.lin ]
    /// [ 0   ω̂ ] [f.lin] = [ ω × f.lin             ]
    /// ```
    #[inline]
    pub fn cross_force(self, f: Force<S>) -> Force<S> {
        Force::new(
            self.ang.cross(f.ang) + self.lin.cross(f.lin),
            self.ang.cross(f.lin),
        )
    }

    /// The scalar pairing `mᵀ f` between a motion and a force (power).
    #[inline]
    pub fn dot(self, f: Force<S>) -> S {
        self.ang.dot(f.ang) + self.lin.dot(f.lin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_motion(seed: &mut u64) -> Motion<f64> {
        let mut next = || {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        Motion::new(
            Vec3::new(next(), next(), next()),
            Vec3::new(next(), next(), next()),
        )
    }

    #[test]
    fn array_round_trip() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(Motion::from_array(a).to_array(), a);
        assert_eq!(Force::from_array(a).to_array(), a);
    }

    #[test]
    fn cross_motion_is_anticommutative_in_first_arg() {
        let mut seed = 42;
        let a = rand_motion(&mut seed);
        let b = rand_motion(&mut seed);
        let ab = a.cross_motion(b);
        let ba = b.cross_motion(a);
        assert!((ab + ba).max_abs() < 1e-12, "v×w = -w×v for spatial motion");
    }

    #[test]
    fn duality_identity() {
        // The defining identity of ×*: (v × m) · f = -m · (v ×* f).
        let mut seed = 7;
        let v = rand_motion(&mut seed);
        let m = rand_motion(&mut seed);
        let f_as_motion = rand_motion(&mut seed);
        let f = Force::new(f_as_motion.ang, f_as_motion.lin);
        let lhs = v.cross_motion(m).dot(f);
        let rhs = -(m.dot(v.cross_force(f)));
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn self_cross_vanishes() {
        let mut seed = 99;
        let v = rand_motion(&mut seed);
        assert!(v.cross_motion(v).max_abs() < 1e-15);
    }

    #[test]
    fn scale_and_neg() {
        let v = Motion::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(v.scale(2.0).ang.y, 4.0);
        assert_eq!((-v).lin.z, -6.0);
        assert_eq!((v - v).max_abs(), 0.0);
    }
}
