//! 3-vectors over a generic [`Scalar`].

use crate::Scalar;
use core::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-dimensional vector.
///
/// Plain passive data in the C spirit; fields are public.
///
/// # Examples
///
/// ```
/// use robo_spatial::Vec3;
///
/// let x = Vec3::new(1.0, 0.0, 0.0);
/// let y = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3<S> {
    /// x component.
    pub x: S,
    /// y component.
    pub y: S,
    /// z component.
    pub z: S,
}

impl<S: Scalar> Vec3<S> {
    /// Creates a vector from its components.
    #[inline]
    pub fn new(x: S, y: S, z: S) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    #[inline]
    pub fn zero() -> Self {
        Self::new(S::zero(), S::zero(), S::zero())
    }

    /// Converts an `f64` triple into this scalar type.
    pub fn from_f64(v: [f64; 3]) -> Self {
        Self::new(S::from_f64(v[0]), S::from_f64(v[1]), S::from_f64(v[2]))
    }

    /// Converts to an `f64` triple.
    pub fn to_f64(self) -> [f64; 3] {
        [self.x.to_f64(), self.y.to_f64(), self.z.to_f64()]
    }

    /// Converts between scalar types through `f64`.
    pub fn cast<T: Scalar>(self) -> Vec3<T> {
        Vec3::from_f64(self.to_f64())
    }

    /// The components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [S; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [S; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Self) -> S {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product `self × other`.
    #[inline]
    pub fn cross(self, other: Self) -> Self {
        Self::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Scales every component by `s`.
    #[inline]
    pub fn scale(self, s: S) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }

    /// Euclidean norm.
    pub fn norm(self) -> S {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_squared(self) -> S {
        self.dot(self)
    }

    /// Largest absolute component, as `f64` (used by tests and error checks).
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs()).to_f64()
    }

    /// Whether every component is finite / non-saturated.
    pub fn is_valid(self) -> bool {
        self.x.is_valid() && self.y.is_valid() && self.z.is_valid()
    }
}

impl<S: Scalar> Add for Vec3<S> {
    type Output = Self;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl<S: Scalar> Sub for Vec3<S> {
    type Output = Self;

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl<S: Scalar> Neg for Vec3<S> {
    type Output = Self;

    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl<S: Scalar> AddAssign for Vec3<S> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<S: Scalar> SubAssign for Vec3<S> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<S: Scalar> Mul<S> for Vec3<S> {
    type Output = Self;

    #[inline]
    fn mul(self, rhs: S) -> Self {
        self.scale(rhs)
    }
}

impl<S: Scalar> Index<usize> for Vec3<S> {
    type Output = S;

    fn index(&self, i: usize) -> &S {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl<S: Scalar> IndexMut<usize> for Vec3<S> {
    fn index_mut(&mut self, i: usize) -> &mut S {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        // a × b is orthogonal to both operands.
        let c = a.cross(b);
        assert_eq!(c.dot(a), 0.0);
        assert_eq!(c.dot(b), 0.0);
        // Anti-commutativity.
        assert_eq!(a.cross(b), -b.cross(a));
    }

    #[test]
    fn norm() {
        let v = Vec3::new(3.0_f64, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_squared(), 25.0);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[1], 2.0);
        v[2] = 9.0;
        assert_eq!(v.z, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let _ = v[3];
    }

    #[test]
    fn conversions() {
        let v = Vec3::<f64>::from_f64([1.5, -2.5, 0.25]);
        assert_eq!(v.to_f64(), [1.5, -2.5, 0.25]);
        let w: Vec3<f32> = v.cast();
        assert_eq!(w.to_f64(), [1.5, -2.5, 0.25]);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }
}
