//! Native SIMD lane types behind the same [`Scalar`] trait.
//!
//! The portable [`Lanes<S, W>`](crate::Lanes) fallback relies on the
//! compiler autovectorizing its elementwise inner loops; the types in
//! this module issue real `core::arch` vector instructions instead, one
//! per architecture tier (see [`ExecTier`](crate::ExecTier)):
//!
//! * x86-64 [`F64x2`] / [`F32x4`] — 128-bit SSE/SSE2 vectors. SSE2 is
//!   part of the x86-64 baseline ABI, so these inline into *every*
//!   generic kernel without runtime checks.
//! * x86-64 [`F64x4`] / [`F32x8`] — 32-byte-aligned lane bundles sized
//!   for 256-bit AVX2 registers. Their `Scalar` arithmetic is portable
//!   (AVX2 code cannot be inlined into unattributed callers, so intrinsic
//!   operators would *slow down* generic kernels); the AVX2 wins come
//!   from the direct-threaded tape in `robo-codegen`, whose
//!   `#[target_feature(enable = "avx2")]` handlers load these aligned
//!   bundles straight into `ymm` registers. The alignment and the
//!   distinct `TypeId` are what these wrappers contribute.
//! * AArch64 [`F64x2`] / [`F32x4`] — 128-bit NEON vectors (baseline on
//!   AArch64).
//!
//! # Bit-identity, and why FMA is refused
//!
//! Every type here keeps the `Lanes` contract: a wide computation is
//! bit-identical, lane for lane, to `WIDTH` independent scalar runs.
//! That holds because each operation is *exactly* the scalar operation,
//! elementwise:
//!
//! * `+ - * / sqrt` vector instructions are IEEE-754 correctly rounded,
//!   the same operation the scalar ALU performs per lane;
//! * `neg`/`abs` are exact sign-bit manipulations, matching `-x` and
//!   `f64::abs` (NaNs included);
//! * `min`/`max` are implemented as compare-and-blend sequences that
//!   replicate the [`Scalar`] *default* branches (`if self < other …`)
//!   per lane — **not** `minpd`/`maxpd`, whose NaN and `±0.0` semantics
//!   differ from the scalar defaults;
//! * `sin`/`cos` fall back to per-lane scalar calls;
//! * comparisons use the same product order as `Lanes`, so
//!   value-dependent branches in generic code fire only when every lane
//!   agrees.
//!
//! Fused multiply-add instructions are never emitted, even on hosts with
//! FMA units: the compiled tape's fused ops (`MulAdd` and friends) are
//! *dispatch* fusions that preserve both rounding steps, and contracting
//! them to one rounding would silently diverge from the scalar oracle.
//! Bit-identity across tiers is what lets the test suite compare any
//! tier against plain scalar runs with `to_bits()` equality.

#![allow(clippy::needless_range_loop)]

use crate::scalar::Scalar;
use crate::wide::WideScalar;
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Structural boilerplate shared by every native lane type: constructors
/// and lane accessors, `Default`, `Display`, the product-order
/// `PartialOrd`, assign-op forwarding, and the `WideScalar` impl.
macro_rules! wide_struct_common {
    ($t:ident, $elem:ty, $w:expr) => {
        impl $t {
            /// Bundles `WIDTH` per-state values (lane `l` holds state
            /// `l`'s value).
            pub fn new(lanes: [$elem; $w]) -> Self {
                Self(lanes)
            }

            /// Broadcasts one value into every lane.
            pub fn splat(value: $elem) -> Self {
                Self([value; $w])
            }

            /// The value in lane `i`.
            ///
            /// # Panics
            ///
            /// Panics if `i >= WIDTH`.
            pub fn lane(&self, i: usize) -> $elem {
                self.0[i]
            }

            /// Overwrites lane `i`.
            ///
            /// # Panics
            ///
            /// Panics if `i >= WIDTH`.
            pub fn set_lane(&mut self, i: usize, value: $elem) {
                self.0[i] = value;
            }

            /// All lanes, in order.
            pub fn lanes(&self) -> &[$elem; $w] {
                &self.0
            }

            #[inline]
            #[allow(dead_code)]
            fn map(self, f: impl Fn($elem) -> $elem) -> Self {
                Self(core::array::from_fn(|i| f(self.0[i])))
            }

            #[inline]
            #[allow(dead_code)]
            fn zip(self, rhs: Self, f: impl Fn($elem, $elem) -> $elem) -> Self {
                Self(core::array::from_fn(|i| f(self.0[i], rhs.0[i])))
            }
        }

        impl Default for $t {
            fn default() -> Self {
                Self::splat(<$elem>::default())
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "[")?;
                for (i, v) in self.0.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }

        /// The product order, exactly as on `Lanes`: `Less`/`Greater`
        /// only when every lane agrees, `None` when lanes disagree.
        impl PartialOrd for $t {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                let mut has_lt = false;
                let mut has_gt = false;
                for i in 0..$w {
                    match self.0[i].partial_cmp(&other.0[i])? {
                        Ordering::Less => has_lt = true,
                        Ordering::Greater => has_gt = true,
                        Ordering::Equal => {}
                    }
                }
                match (has_lt, has_gt) {
                    (false, false) => Some(Ordering::Equal),
                    (true, false) => Some(Ordering::Less),
                    (false, true) => Some(Ordering::Greater),
                    (true, true) => None,
                }
            }
        }

        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl MulAssign for $t {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl DivAssign for $t {
            #[inline]
            fn div_assign(&mut self, rhs: Self) {
                *self = *self / rhs;
            }
        }

        impl WideScalar for $t {
            type Elem = $elem;

            const WIDTH: usize = $w;

            #[inline]
            fn splat(value: $elem) -> Self {
                $t::splat(value)
            }

            #[inline]
            fn lane(&self, i: usize) -> $elem {
                $t::lane(self, i)
            }

            #[inline]
            fn set_lane(&mut self, i: usize, value: $elem) {
                $t::set_lane(self, i, value);
            }
        }
    };
}

/// The `Scalar` impl shared by every native lane type. The caller must
/// supply `abs`, `min`, `max`, and `sqrt` (intrinsic or per-lane) —
/// leaving the trait defaults would be *wrong* for a wide type (the
/// defaults branch on the product order and `sqrt` would splat lane 0).
macro_rules! wide_scalar_common {
    ($t:ident, $elem:ty, $w:expr, $name:literal, $($rest:item)*) => {
        impl Scalar for $t {
            fn name() -> String {
                $name.to_owned()
            }

            #[inline]
            fn zero() -> Self {
                Self::splat(<$elem as Scalar>::zero())
            }

            #[inline]
            fn one() -> Self {
                Self::splat(<$elem as Scalar>::one())
            }

            /// Broadcasts, so constants cast at plan-build time are
            /// identical in every lane.
            #[inline]
            fn from_f64(value: f64) -> Self {
                Self::splat(<$elem as Scalar>::from_f64(value))
            }

            /// Lane 0 — a wide value has no single `f64` reduction.
            #[inline]
            fn to_f64(self) -> f64 {
                self.0[0].to_f64()
            }

            fn resolution() -> f64 {
                <$elem as Scalar>::resolution()
            }

            #[inline]
            fn sin(self) -> Self {
                self.map(<$elem as Scalar>::sin)
            }

            #[inline]
            fn cos(self) -> Self {
                self.map(<$elem as Scalar>::cos)
            }

            fn is_valid(self) -> bool {
                self.0.iter().all(|v| v.is_valid())
            }

            /// Per-lane wide accumulation, keeping parity with the
            /// element type's accumulator model.
            fn dot_accumulate(terms: &[(Self, Self)]) -> Self {
                Self(core::array::from_fn(|l| {
                    <$elem as Scalar>::dot_accumulate_from(
                        terms.iter().map(|(a, b)| (a.0[l], b.0[l])),
                    )
                }))
            }

            $($rest)*
        }
    };
}

/// Portable per-lane `abs`/`min`/`max`/`sqrt` items, for lane types whose
/// arithmetic is portable (the AVX2-width bundles) — passed into
/// [`wide_scalar_common!`].
macro_rules! portable_lane_fns {
    ($t:ident, $elem:ty, $w:expr, $name:literal) => {
        wide_scalar_common! {
            $t, $elem, $w, $name,
            #[inline]
            fn abs(self) -> Self {
                self.map(<$elem as Scalar>::abs)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                self.zip(other, <$elem as Scalar>::max)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                self.zip(other, <$elem as Scalar>::min)
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.map(<$elem as Scalar>::sqrt)
            }
        }
    };
}

/// Portable elementwise operator impls (for the AVX2-width bundles — see
/// the module docs for why their operators are *not* intrinsics).
macro_rules! portable_ops {
    ($t:ident) => {
        impl Add for $t {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a + b)
            }
        }
        impl Sub for $t {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a - b)
            }
        }
        impl Mul for $t {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a * b)
            }
        }
        impl Div for $t {
            type Output = Self;
            #[inline]
            fn div(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a / b)
            }
        }
        impl Neg for $t {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                self.map(|a| -a)
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// Two `f64` lanes in one 128-bit SSE2 register.
    ///
    /// SSE2 is part of the x86-64 baseline ABI, so the intrinsic
    /// operators below are sound on every x86-64 host and inline into
    /// unattributed generic code.
    #[derive(Clone, Copy, Debug, PartialEq)]
    #[repr(C, align(16))]
    pub struct F64x2(pub(crate) [f64; 2]);

    /// Four `f32` lanes in one 128-bit SSE register.
    #[derive(Clone, Copy, Debug, PartialEq)]
    #[repr(C, align(16))]
    pub struct F32x4(pub(crate) [f32; 4]);

    /// Four `f64` lanes, 32-byte aligned for 256-bit AVX2 loads.
    ///
    /// Arithmetic is portable (see the module docs); the AVX2-attributed
    /// tape handlers in `robo-codegen` are what touch these with `ymm`
    /// instructions.
    #[derive(Clone, Copy, Debug, PartialEq)]
    #[repr(C, align(32))]
    pub struct F64x4(pub(crate) [f64; 4]);

    /// Eight `f32` lanes, 32-byte aligned for 256-bit AVX2 loads.
    #[derive(Clone, Copy, Debug, PartialEq)]
    #[repr(C, align(32))]
    pub struct F32x8(pub(crate) [f32; 8]);

    wide_struct_common!(F64x2, f64, 2);
    wide_struct_common!(F32x4, f32, 4);
    wide_struct_common!(F64x4, f64, 4);
    wide_struct_common!(F32x8, f32, 8);

    impl F64x2 {
        #[inline(always)]
        fn v(self) -> __m128d {
            // SAFETY: `sse2` is statically enabled on every x86-64
            // target, and `self.0` is a valid, 16-byte-aligned
            // (`repr(align(16))`) array of two `f64`s — exactly the
            // memory `_mm_load_pd` reads.
            unsafe { _mm_load_pd(self.0.as_ptr()) }
        }

        #[inline(always)]
        fn from_v(v: __m128d) -> Self {
            let mut out = Self([0.0; 2]);
            // SAFETY: `sse2` is statically enabled on every x86-64
            // target; `out.0` is valid and 16-byte aligned for a
            // two-`f64` store.
            unsafe { _mm_store_pd(out.0.as_mut_ptr(), v) };
            out
        }
    }

    impl F32x4 {
        #[inline(always)]
        fn v(self) -> __m128 {
            // SAFETY: `sse` is statically enabled on every x86-64
            // target; `self.0` is a valid, 16-byte-aligned array of four
            // `f32`s — exactly the memory `_mm_load_ps` reads.
            unsafe { _mm_load_ps(self.0.as_ptr()) }
        }

        #[inline(always)]
        fn from_v(v: __m128) -> Self {
            let mut out = Self([0.0; 4]);
            // SAFETY: `sse` is statically enabled on every x86-64
            // target; `out.0` is valid and 16-byte aligned for a
            // four-`f32` store.
            unsafe { _mm_store_ps(out.0.as_mut_ptr(), v) };
            out
        }
    }

    /// One intrinsic binary operator. Each intrinsic is a pure
    /// register-to-register elementwise IEEE-754 operation — never an
    /// FMA — so each lane computes exactly what the scalar op computes.
    macro_rules! sse_binop {
        ($t:ident, $trait:ident, $method:ident, $intr:ident) => {
            impl $trait for $t {
                type Output = Self;

                #[inline(always)]
                fn $method(self, rhs: Self) -> Self {
                    // SAFETY: `sse`/`sse2` are statically enabled on
                    // every x86-64 target, so the required target
                    // feature is always present.
                    Self::from_v(unsafe { $intr(self.v(), rhs.v()) })
                }
            }
        };
    }

    sse_binop!(F64x2, Add, add, _mm_add_pd);
    sse_binop!(F64x2, Sub, sub, _mm_sub_pd);
    sse_binop!(F64x2, Mul, mul, _mm_mul_pd);
    sse_binop!(F64x2, Div, div, _mm_div_pd);
    sse_binop!(F32x4, Add, add, _mm_add_ps);
    sse_binop!(F32x4, Sub, sub, _mm_sub_ps);
    sse_binop!(F32x4, Mul, mul, _mm_mul_ps);
    sse_binop!(F32x4, Div, div, _mm_div_ps);

    impl Neg for F64x2 {
        type Output = Self;

        #[inline(always)]
        fn neg(self) -> Self {
            // SAFETY: `sse2` is statically enabled on every x86-64
            // target. XOR with the sign mask is the exact IEEE sign flip
            // that scalar `-x` performs per lane (NaNs included).
            Self::from_v(unsafe { _mm_xor_pd(self.v(), _mm_set1_pd(-0.0)) })
        }
    }

    impl Neg for F32x4 {
        type Output = Self;

        #[inline(always)]
        fn neg(self) -> Self {
            // SAFETY: `sse` is statically enabled on every x86-64
            // target. XOR with the sign mask is the exact IEEE sign flip
            // that scalar `-x` performs per lane (NaNs included).
            Self::from_v(unsafe { _mm_xor_ps(self.v(), _mm_set1_ps(-0.0)) })
        }
    }

    wide_scalar_common! {
        F64x2, f64, 2, "F64x2(sse2)",
        #[inline(always)]
        fn abs(self) -> Self {
            // SAFETY: `sse2` is statically enabled on every x86-64
            // target. ANDNOT with the sign mask clears the sign bit,
            // exactly `f64::abs` per lane (NaNs included).
            Self::from_v(unsafe { _mm_andnot_pd(_mm_set1_pd(-0.0), self.v()) })
        }
        #[inline(always)]
        fn max(self, other: Self) -> Self {
            // Per-lane `if self < other { other } else { self }` via
            // compare-and-blend — NOT `maxpd`, whose NaN/±0.0 semantics
            // differ from the Scalar default this must reproduce.
            // SAFETY: `sse2` is statically enabled on every x86-64
            // target; all four intrinsics are elementwise bitwise ops.
            unsafe {
                let (a, b) = (self.v(), other.v());
                let lt = _mm_cmplt_pd(a, b);
                Self::from_v(_mm_or_pd(_mm_and_pd(lt, b), _mm_andnot_pd(lt, a)))
            }
        }
        #[inline(always)]
        fn min(self, other: Self) -> Self {
            // Per-lane `if other < self { other } else { self }`.
            // SAFETY: as for `max` above.
            unsafe {
                let (a, b) = (self.v(), other.v());
                let lt = _mm_cmplt_pd(b, a);
                Self::from_v(_mm_or_pd(_mm_and_pd(lt, b), _mm_andnot_pd(lt, a)))
            }
        }
        #[inline(always)]
        fn sqrt(self) -> Self {
            // SAFETY: `sse2` is statically enabled on every x86-64
            // target. `sqrtpd` is IEEE correctly rounded — the same
            // operation `f64::sqrt` lowers to, per lane.
            Self::from_v(unsafe { _mm_sqrt_pd(self.v()) })
        }
    }

    wide_scalar_common! {
        F32x4, f32, 4, "F32x4(sse)",
        #[inline(always)]
        fn abs(self) -> Self {
            // SAFETY: `sse` is statically enabled on every x86-64
            // target. ANDNOT with the sign mask clears the sign bit,
            // exactly `f32::abs` per lane (NaNs included).
            Self::from_v(unsafe { _mm_andnot_ps(_mm_set1_ps(-0.0), self.v()) })
        }
        #[inline(always)]
        fn max(self, other: Self) -> Self {
            // Per-lane `if self < other { other } else { self }` via
            // compare-and-blend (see `F64x2::max`).
            // SAFETY: `sse` is statically enabled on every x86-64
            // target; all four intrinsics are elementwise bitwise ops.
            unsafe {
                let (a, b) = (self.v(), other.v());
                let lt = _mm_cmplt_ps(a, b);
                Self::from_v(_mm_or_ps(_mm_and_ps(lt, b), _mm_andnot_ps(lt, a)))
            }
        }
        #[inline(always)]
        fn min(self, other: Self) -> Self {
            // Per-lane `if other < self { other } else { self }`.
            // SAFETY: as for `max` above.
            unsafe {
                let (a, b) = (self.v(), other.v());
                let lt = _mm_cmplt_ps(b, a);
                Self::from_v(_mm_or_ps(_mm_and_ps(lt, b), _mm_andnot_ps(lt, a)))
            }
        }
        #[inline(always)]
        fn sqrt(self) -> Self {
            // SAFETY: `sse` is statically enabled on every x86-64
            // target. `sqrtps` is IEEE correctly rounded — the same
            // operation `f32::sqrt` lowers to, per lane.
            Self::from_v(unsafe { _mm_sqrt_ps(self.v()) })
        }
    }

    portable_ops!(F64x4);
    portable_ops!(F32x8);
    portable_lane_fns!(F64x4, f64, 4, "F64x4(avx2)");
    portable_lane_fns!(F32x8, f32, 8, "F32x8(avx2)");
}

#[cfg(target_arch = "x86_64")]
pub use x86::{F32x4, F32x8, F64x2, F64x4};

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::*;
    use core::arch::aarch64::*;

    /// Two `f64` lanes in one 128-bit NEON register (NEON is part of the
    /// AArch64 baseline, so these intrinsics are sound on every AArch64
    /// host and inline into unattributed generic code).
    #[derive(Clone, Copy, Debug, PartialEq)]
    #[repr(C, align(16))]
    pub struct F64x2(pub(crate) [f64; 2]);

    /// Four `f32` lanes in one 128-bit NEON register.
    #[derive(Clone, Copy, Debug, PartialEq)]
    #[repr(C, align(16))]
    pub struct F32x4(pub(crate) [f32; 4]);

    wide_struct_common!(F64x2, f64, 2);
    wide_struct_common!(F32x4, f32, 4);

    impl F64x2 {
        #[inline(always)]
        fn v(self) -> float64x2_t {
            // SAFETY: `neon` is statically enabled on every AArch64
            // target; `self.0` is a valid array of two `f64`s, exactly
            // the memory `vld1q_f64` reads.
            unsafe { vld1q_f64(self.0.as_ptr()) }
        }

        #[inline(always)]
        fn from_v(v: float64x2_t) -> Self {
            let mut out = Self([0.0; 2]);
            // SAFETY: `neon` is statically enabled on every AArch64
            // target; `out.0` is valid for a two-`f64` store.
            unsafe { vst1q_f64(out.0.as_mut_ptr(), v) };
            out
        }
    }

    impl F32x4 {
        #[inline(always)]
        fn v(self) -> float32x4_t {
            // SAFETY: `neon` is statically enabled on every AArch64
            // target; `self.0` is a valid array of four `f32`s, exactly
            // the memory `vld1q_f32` reads.
            unsafe { vld1q_f32(self.0.as_ptr()) }
        }

        #[inline(always)]
        fn from_v(v: float32x4_t) -> Self {
            let mut out = Self([0.0; 4]);
            // SAFETY: `neon` is statically enabled on every AArch64
            // target; `out.0` is valid for a four-`f32` store.
            unsafe { vst1q_f32(out.0.as_mut_ptr(), v) };
            out
        }
    }

    /// One intrinsic binary operator; each is a pure elementwise
    /// IEEE-754 operation (never an FMA).
    macro_rules! neon_binop {
        ($t:ident, $trait:ident, $method:ident, $intr:ident) => {
            impl $trait for $t {
                type Output = Self;

                #[inline(always)]
                fn $method(self, rhs: Self) -> Self {
                    // SAFETY: `neon` is statically enabled on every
                    // AArch64 target, so the required target feature is
                    // always present.
                    Self::from_v(unsafe { $intr(self.v(), rhs.v()) })
                }
            }
        };
    }

    neon_binop!(F64x2, Add, add, vaddq_f64);
    neon_binop!(F64x2, Sub, sub, vsubq_f64);
    neon_binop!(F64x2, Mul, mul, vmulq_f64);
    neon_binop!(F64x2, Div, div, vdivq_f64);
    neon_binop!(F32x4, Add, add, vaddq_f32);
    neon_binop!(F32x4, Sub, sub, vsubq_f32);
    neon_binop!(F32x4, Mul, mul, vmulq_f32);
    neon_binop!(F32x4, Div, div, vdivq_f32);

    impl Neg for F64x2 {
        type Output = Self;

        #[inline(always)]
        fn neg(self) -> Self {
            // SAFETY: `neon` is statically enabled on every AArch64
            // target. FNEG is the exact IEEE sign flip that scalar `-x`
            // performs per lane (NaNs included).
            Self::from_v(unsafe { vnegq_f64(self.v()) })
        }
    }

    impl Neg for F32x4 {
        type Output = Self;

        #[inline(always)]
        fn neg(self) -> Self {
            // SAFETY: `neon` is statically enabled on every AArch64
            // target. FNEG is the exact IEEE sign flip that scalar `-x`
            // performs per lane (NaNs included).
            Self::from_v(unsafe { vnegq_f32(self.v()) })
        }
    }

    // `abs`/`min`/`max`/`sqrt` stay per-lane portable on NEON: the
    // vector min/max instructions have IEEE minNum/maxNum NaN semantics
    // that differ from the Scalar defaults, and per-lane calls keep the
    // (CI-uncovered) AArch64 path trivially bit-identical.
    portable_lane_fns!(F64x2, f64, 2, "F64x2(neon)");
    portable_lane_fns!(F32x4, f32, 4, "F32x4(neon)");
}

#[cfg(target_arch = "aarch64")]
pub use neon::{F32x4, F64x2};

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    /// Tricky values: signed zeros, NaN, infinities, subnormals, and
    /// ordinary magnitudes that exercise rounding.
    const CASES: [f64; 10] = [
        0.0,
        -0.0,
        1.0,
        -3.5,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        5e-324,
        0.1,
        -1.0e300,
    ];

    fn b(x: f64) -> u64 {
        x.to_bits()
    }

    #[test]
    fn f64x2_ops_match_scalar_bitwise() {
        for &x in &CASES {
            for &y in &CASES {
                let a = F64x2::new([x, y]);
                let c = F64x2::new([y, x]);
                for l in 0..2 {
                    let (sa, sc) = (a.lane(l), c.lane(l));
                    assert_eq!(b((a + c).lane(l)), b(sa + sc));
                    assert_eq!(b((a - c).lane(l)), b(sa - sc));
                    assert_eq!(b((a * c).lane(l)), b(sa * sc));
                    assert_eq!(b((a / c).lane(l)), b(sa / sc));
                    assert_eq!(b((-a).lane(l)), b(-sa));
                    assert_eq!(b(a.abs().lane(l)), b(sa.abs()));
                    assert_eq!(b(Scalar::max(a, c).lane(l)), b(Scalar::max(sa, sc)));
                    assert_eq!(b(Scalar::min(a, c).lane(l)), b(Scalar::min(sa, sc)));
                }
            }
        }
    }

    #[test]
    fn f64x2_sqrt_matches_scalar_bitwise() {
        for &x in &CASES {
            if x.is_nan() || x < 0.0 {
                // NaN payloads of invalid sqrt operands are not pinned
                // by IEEE; the kernels never take sqrt of negatives.
                continue;
            }
            let a = F64x2::splat(x);
            assert_eq!(b(Scalar::sqrt(a).lane(0)), b(x.sqrt()));
            assert_eq!(b(Scalar::sqrt(a).lane(1)), b(x.sqrt()));
        }
    }

    #[test]
    fn f32x4_ops_match_scalar_bitwise() {
        let cases: Vec<f32> = CASES.iter().map(|&x| x as f32).collect();
        for &x in &cases {
            for &y in &cases {
                let a = F32x4::new([x, y, -x, y + 1.0]);
                let c = F32x4::new([y, x, y - 2.0, -x]);
                for l in 0..4 {
                    let (sa, sc) = (a.lane(l), c.lane(l));
                    assert_eq!(b(f64::from((a + c).lane(l))), b(f64::from(sa + sc)));
                    assert_eq!(b(f64::from((a * c).lane(l))), b(f64::from(sa * sc)));
                    assert_eq!(b(f64::from((a / c).lane(l))), b(f64::from(sa / sc)));
                    assert_eq!(b(f64::from((-a).lane(l))), b(f64::from(-sa)));
                    assert_eq!(b(f64::from(a.abs().lane(l))), b(f64::from(sa.abs())));
                    assert_eq!(
                        b(f64::from(Scalar::max(a, c).lane(l))),
                        b(f64::from(Scalar::max(sa, sc)))
                    );
                    assert_eq!(
                        b(f64::from(Scalar::min(a, c).lane(l))),
                        b(f64::from(Scalar::min(sa, sc)))
                    );
                }
            }
        }
    }

    #[test]
    fn min_max_keep_scalar_branch_semantics_not_native_minpd() {
        // The Scalar default `max` returns `self` when the comparison is
        // false — so max(NaN, 1.0) is NaN, while `maxpd` would give 1.0.
        let nan = F64x2::splat(f64::NAN);
        let one = F64x2::splat(1.0);
        assert!(Scalar::max(nan, one).lane(0).is_nan());
        assert!(Scalar::min(nan, one).lane(0).is_nan());
        assert_eq!(b(Scalar::max(one, nan).lane(0)), b(1.0));
        // Signed zeros: -0.0 < 0.0 is false, so max(-0.0, 0.0) = -0.0.
        let pz = F64x2::splat(0.0);
        let nz = F64x2::splat(-0.0);
        assert_eq!(b(Scalar::max(nz, pz).lane(0)), b(-0.0));
        assert_eq!(b(Scalar::min(pz, nz).lane(0)), b(0.0));
    }

    #[test]
    fn avx2_width_bundles_are_elementwise_and_aligned() {
        assert_eq!(core::mem::align_of::<F64x4>(), 32);
        assert_eq!(core::mem::align_of::<F32x8>(), 32);
        let a = F64x4::new([1.0, -2.0, 3.5, 0.0]);
        let c = F64x4::new([0.5, 4.0, -1.0, 2.0]);
        for l in 0..4 {
            assert_eq!(b((a + c).lane(l)), b(a.lane(l) + c.lane(l)));
            assert_eq!(b((a - c).lane(l)), b(a.lane(l) - c.lane(l)));
            assert_eq!(b((a * c).lane(l)), b(a.lane(l) * c.lane(l)));
            assert_eq!(b((a / c).lane(l)), b(a.lane(l) / c.lane(l)));
            assert_eq!(b((-a).lane(l)), b(-a.lane(l)));
        }
    }

    #[test]
    fn product_order_and_splat_match_lanes_semantics() {
        let lo = F64x2::new([1.0, 2.0]);
        let hi = F64x2::new([3.0, 4.0]);
        let mixed = F64x2::new([5.0, 0.0]);
        assert!(lo < hi);
        assert_eq!(lo.partial_cmp(&mixed), None);
        assert_eq!(F64x2::from_f64(0.3).lane(1), 0.3);
        assert_eq!(F64x2::from_f64(0.3).to_f64(), 0.3);
        assert!(!F64x2::new([1.0, f64::NAN]).is_valid());
    }

    #[test]
    fn dot_accumulate_matches_scalar_per_lane() {
        let terms: Vec<(F64x2, F64x2)> = (0..5)
            .map(|k| {
                let k = f64::from(k);
                (
                    F64x2::new([0.3 * k, -1.1 * k]),
                    F64x2::new([2.0 - k, 0.7 * k]),
                )
            })
            .collect();
        let wide = F64x2::dot_accumulate(&terms);
        for l in 0..2 {
            let scalar: Vec<(f64, f64)> =
                terms.iter().map(|(a, b)| (a.lane(l), b.lane(l))).collect();
            assert_eq!(b(wide.lane(l)), b(f64::dot_accumulate(&scalar)));
        }
    }
}
