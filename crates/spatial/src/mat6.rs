//! Dense 6×6 matrices, used for composite inertias and sparsity analysis.

use crate::{Force, Mat3, Motion, Scalar};
use core::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense 6×6 matrix stored row-major.
///
/// Used where structural representations are inconvenient: composite rigid
/// body inertias (CRBA), articulated-body inertias (ABA), and the dense view
/// of joint transforms that the sparsity analysis inspects.
///
/// # Examples
///
/// ```
/// use robo_spatial::Mat6;
///
/// let i = Mat6::<f64>::identity();
/// assert_eq!(i.mul_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])[4], 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat6<S> {
    /// Rows of the matrix: `m[row][col]`.
    pub m: [[S; 6]; 6],
}

impl<S: Scalar> Default for Mat6<S> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<S: Scalar> Mat6<S> {
    /// The zero matrix.
    pub fn zero() -> Self {
        Self {
            m: [[S::zero(); 6]; 6],
        }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut out = Self::zero();
        for i in 0..6 {
            out.m[i][i] = S::one();
        }
        out
    }

    /// Assembles a 6×6 matrix from four 3×3 blocks:
    ///
    /// ```text
    /// [ tl  tr ]
    /// [ bl  br ]
    /// ```
    pub fn from_blocks(tl: Mat3<S>, tr: Mat3<S>, bl: Mat3<S>, br: Mat3<S>) -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = tl.m[i][j];
                out.m[i][j + 3] = tr.m[i][j];
                out.m[i + 3][j] = bl.m[i][j];
                out.m[i + 3][j + 3] = br.m[i][j];
            }
        }
        out
    }

    /// Extracts the four 3×3 blocks `(tl, tr, bl, br)`.
    pub fn to_blocks(&self) -> (Mat3<S>, Mat3<S>, Mat3<S>, Mat3<S>) {
        let mut tl = Mat3::zero();
        let mut tr = Mat3::zero();
        let mut bl = Mat3::zero();
        let mut br = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                tl.m[i][j] = self.m[i][j];
                tr.m[i][j] = self.m[i][j + 3];
                bl.m[i][j] = self.m[i + 3][j];
                br.m[i][j] = self.m[i + 3][j + 3];
            }
        }
        (tl, tr, bl, br)
    }

    /// Matrix–vector product on a raw 6-array.
    pub fn mul_array(&self, v: [S; 6]) -> [S; 6] {
        let mut out = [S::zero(); 6];
        for (i, row) in self.m.iter().enumerate() {
            let mut acc = S::zero();
            for (a, b) in row.iter().zip(v.iter()) {
                acc += *a * *b;
            }
            out[i] = acc;
        }
        out
    }

    /// Applies the matrix to a motion vector, producing a force vector
    /// (the shape of an inertia: `f = I v`).
    pub fn mul_motion(&self, v: Motion<S>) -> Force<S> {
        Force::from_array(self.mul_array(v.to_array()))
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zero();
        for i in 0..6 {
            for j in 0..6 {
                out.m[i][j] = self.m[j][i];
            }
        }
        out
    }

    /// Converts to an `f64` matrix.
    pub fn to_f64(&self) -> [[f64; 6]; 6] {
        let mut out = [[0.0; 6]; 6];
        for i in 0..6 {
            for j in 0..6 {
                out[i][j] = self.m[i][j].to_f64();
            }
        }
        out
    }

    /// Largest absolute entry, as `f64`.
    pub fn max_abs(&self) -> f64 {
        let mut best = 0.0_f64;
        for row in &self.m {
            for x in row {
                best = best.max(x.abs().to_f64());
            }
        }
        best
    }

    /// Counts entries whose magnitude exceeds `tol` (used by the sparsity
    /// analysis to derive structural patterns from numeric samples).
    pub fn count_nonzero(&self, tol: f64) -> usize {
        self.m
            .iter()
            .flatten()
            .filter(|x| x.abs().to_f64() > tol)
            .count()
    }
}

impl<S: Scalar> Add for Mat6<S> {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..6 {
            for j in 0..6 {
                out.m[i][j] += rhs.m[i][j];
            }
        }
        out
    }
}

impl<S: Scalar> Sub for Mat6<S> {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..6 {
            for j in 0..6 {
                out.m[i][j] -= rhs.m[i][j];
            }
        }
        out
    }
}

impl<S: Scalar> Neg for Mat6<S> {
    type Output = Self;

    fn neg(self) -> Self {
        let mut out = self;
        for i in 0..6 {
            for j in 0..6 {
                out.m[i][j] = -out.m[i][j];
            }
        }
        out
    }
}

impl<S: Scalar> Mul for Mat6<S> {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::zero();
        for i in 0..6 {
            for j in 0..6 {
                let mut acc = S::zero();
                for (k, rhs_row) in rhs.m.iter().enumerate() {
                    acc += self.m[i][k] * rhs_row[j];
                }
                out.m[i][j] = acc;
            }
        }
        out
    }
}

impl<S: Scalar> Index<(usize, usize)> for Mat6<S> {
    type Output = S;

    fn index(&self, (i, j): (usize, usize)) -> &S {
        &self.m[i][j]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for Mat6<S> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        &mut self.m[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Transform, Vec3};

    #[test]
    fn block_round_trip() {
        let tl = Mat3::coord_rotation_x(0.3);
        let tr = Mat3::skew(Vec3::new(1.0, 2.0, 3.0));
        let bl = Mat3::outer(Vec3::new(1.0, 0.0, 1.0), Vec3::new(0.0, 2.0, 0.0));
        let br = Mat3::identity();
        let m = Mat6::from_blocks(tl, tr, bl, br);
        let (a, b, c, d) = m.to_blocks();
        assert_eq!((a, b, c, d), (tl, tr, bl, br));
    }

    #[test]
    fn identity_multiplication() {
        let x = Transform::<f64>::new(Mat3::coord_rotation_z(0.5), Vec3::new(0.1, 0.2, 0.3));
        let m = x.to_mat6();
        assert!(((Mat6::identity() * m) - m).max_abs() < 1e-15);
    }

    #[test]
    fn transform_matrix_inverse() {
        let x = Transform::<f64>::new(Mat3::coord_rotation_y(-0.8), Vec3::new(0.4, -0.1, 0.6));
        let prod = x.to_mat6() * x.inverse().to_mat6();
        assert!((prod - Mat6::identity()).max_abs() < 1e-12);
    }

    #[test]
    fn count_nonzero_on_transform() {
        // A pure rotation about z has the classic 2×(4 trig + 1 unit) pattern
        // in its two diagonal blocks: 10 nonzeros.
        let x = Transform::<f64>::new(Mat3::coord_rotation_z(0.37), Vec3::zero());
        assert_eq!(x.to_mat6().count_nonzero(1e-12), 10);
    }

    #[test]
    fn transpose_involution() {
        let x = Transform::<f64>::new(Mat3::coord_rotation_x(1.1), Vec3::new(0.2, 0.5, -0.3));
        let m = x.to_mat6();
        assert_eq!(m.transpose().transpose(), m);
    }
}
