//! 3×3 matrices over a generic [`Scalar`].

use crate::{Scalar, Vec3};
use core::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A 3×3 matrix stored row-major.
///
/// # Examples
///
/// ```
/// use robo_spatial::{Mat3, Vec3};
///
/// let r = Mat3::<f64>::coord_rotation_z(core::f64::consts::FRAC_PI_2);
/// // A coordinate rotation expresses parent-frame vectors in child
/// // coordinates: the parent x-axis, seen from a child frame rotated +90°
/// // about z, points along the child's -y axis.
/// let v = r.mul_vec(Vec3::new(1.0, 0.0, 0.0));
/// assert!((v.y - (-1.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat3<S> {
    /// Rows of the matrix: `m[row][col]`.
    pub m: [[S; 3]; 3],
}

impl<S: Scalar> Mat3<S> {
    /// Builds a matrix from rows.
    #[inline]
    pub fn from_rows(r0: [S; 3], r1: [S; 3], r2: [S; 3]) -> Self {
        Self { m: [r0, r1, r2] }
    }

    /// The zero matrix.
    pub fn zero() -> Self {
        Self {
            m: [[S::zero(); 3]; 3],
        }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            out.m[i][i] = S::one();
        }
        out
    }

    /// Converts an `f64` matrix into this scalar type.
    pub fn from_f64(v: [[f64; 3]; 3]) -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = S::from_f64(v[i][j]);
            }
        }
        out
    }

    /// Converts to an `f64` matrix.
    pub fn to_f64(self) -> [[f64; 3]; 3] {
        let mut out = [[0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                out[i][j] = self.m[i][j].to_f64();
            }
        }
        out
    }

    /// Converts between scalar types through `f64`.
    pub fn cast<T: Scalar>(self) -> Mat3<T> {
        Mat3::from_f64(self.to_f64())
    }

    /// The skew-symmetric cross-product matrix `v̂` with `v̂ w = v × w`.
    pub fn skew(v: Vec3<S>) -> Self {
        Self::from_rows(
            [S::zero(), -v.z, v.y],
            [v.z, S::zero(), -v.x],
            [-v.y, v.x, S::zero()],
        )
    }

    /// Outer product `a bᵀ`.
    pub fn outer(a: Vec3<S>, b: Vec3<S>) -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = a[i] * b[j];
            }
        }
        out
    }

    /// The *coordinate* rotation about x by angle `q`.
    ///
    /// This is Featherstone's `rotx`: the transpose of the usual rotation
    /// matrix. It expresses the coordinates of a vector in a frame that has
    /// been rotated by `+q` about the x-axis relative to the original frame.
    pub fn coord_rotation_x(q: S) -> Self {
        let (s, c) = (q.sin(), q.cos());
        Self::from_rows(
            [S::one(), S::zero(), S::zero()],
            [S::zero(), c, s],
            [S::zero(), -s, c],
        )
    }

    /// The coordinate rotation about y by angle `q` (see [`Mat3::coord_rotation_x`]).
    pub fn coord_rotation_y(q: S) -> Self {
        let (s, c) = (q.sin(), q.cos());
        Self::from_rows(
            [c, S::zero(), -s],
            [S::zero(), S::one(), S::zero()],
            [s, S::zero(), c],
        )
    }

    /// The coordinate rotation about z by angle `q` (see [`Mat3::coord_rotation_x`]).
    pub fn coord_rotation_z(q: S) -> Self {
        let (s, c) = (q.sin(), q.cos());
        Self::from_rows(
            [c, s, S::zero()],
            [-s, c, S::zero()],
            [S::zero(), S::zero(), S::one()],
        )
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec3<S>) -> Vec3<S> {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Transposed matrix–vector product `Mᵀ v` without forming `Mᵀ`.
    #[inline]
    pub fn tr_mul_vec(&self, v: Vec3<S>) -> Vec3<S> {
        Vec3::new(
            self.m[0][0] * v.x + self.m[1][0] * v.y + self.m[2][0] * v.z,
            self.m[0][1] * v.x + self.m[1][1] * v.y + self.m[2][1] * v.z,
            self.m[0][2] * v.x + self.m[1][2] * v.y + self.m[2][2] * v.z,
        )
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[j][i];
            }
        }
        out
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: S) -> Self {
        let mut out = *self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] *= s;
            }
        }
        out
    }

    /// Largest absolute entry, as `f64`.
    pub fn max_abs(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..3 {
            for j in 0..3 {
                best = best.max(self.m[i][j].abs().to_f64());
            }
        }
        best
    }

    /// Whether every entry is finite / non-saturated.
    pub fn is_valid(&self) -> bool {
        self.m.iter().flatten().all(|x| x.is_valid())
    }
}

impl<S: Scalar> Add for Mat3<S> {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] += rhs.m[i][j];
            }
        }
        out
    }
}

impl<S: Scalar> Sub for Mat3<S> {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] -= rhs.m[i][j];
            }
        }
        out
    }
}

impl<S: Scalar> Neg for Mat3<S> {
    type Output = Self;

    fn neg(self) -> Self {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = -out.m[i][j];
            }
        }
        out
    }
}

impl<S: Scalar> Mul for Mat3<S> {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = S::zero();
                for (k, rhs_row) in rhs.m.iter().enumerate() {
                    acc += self.m[i][k] * rhs_row[j];
                }
                out.m[i][j] = acc;
            }
        }
        out
    }
}

impl<S: Scalar> Index<(usize, usize)> for Mat3<S> {
    type Output = S;

    fn index(&self, (i, j): (usize, usize)) -> &S {
        &self.m[i][j]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for Mat3<S> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        &mut self.m[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::FRAC_PI_2;

    fn approx(a: Vec3<f64>, b: Vec3<f64>) {
        assert!((a - b).max_abs() < 1e-12, "{a:?} vs {b:?}");
    }

    #[test]
    fn identity_is_neutral() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::identity().mul_vec(v), v);
        let m = Mat3::skew(v);
        assert_eq!(Mat3::identity() * m, m);
        assert_eq!(m * Mat3::identity(), m);
    }

    #[test]
    fn skew_matches_cross() {
        let a = Vec3::new(0.3, -1.2, 2.0);
        let b = Vec3::new(-0.5, 0.8, 1.1);
        approx(Mat3::skew(a).mul_vec(b), a.cross(b));
    }

    #[test]
    fn coord_rotation_z_quarter_turn() {
        // A frame rotated +90° about z sees the parent's x-axis along -y?
        // rotz(π/2) = [[0,1,0],[-1,0,0],[0,0,1]]: parent x ↦ child (0,-1,0).
        let r = Mat3::<f64>::coord_rotation_z(FRAC_PI_2);
        approx(
            r.mul_vec(Vec3::new(1.0, 0.0, 0.0)),
            Vec3::new(0.0, -1.0, 0.0),
        );
        approx(
            r.mul_vec(Vec3::new(0.0, 1.0, 0.0)),
            Vec3::new(1.0, 0.0, 0.0),
        );
    }

    #[test]
    fn rotations_are_orthonormal() {
        for q in [0.0, 0.3, -1.1, 2.7] {
            for r in [
                Mat3::<f64>::coord_rotation_x(q),
                Mat3::<f64>::coord_rotation_y(q),
                Mat3::<f64>::coord_rotation_z(q),
            ] {
                let should_be_identity = r * r.transpose();
                let diff = should_be_identity - Mat3::identity();
                assert!(diff.max_abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_mul_consistency() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        let v = Vec3::new(-1.0, 0.5, 2.0);
        approx(m.tr_mul_vec(v), m.transpose().mul_vec(v));
    }

    #[test]
    fn outer_product() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        let o = Mat3::outer(a, b);
        assert_eq!(o[(1, 2)], 12.0);
        assert_eq!(o[(2, 0)], 12.0);
    }

    #[test]
    fn mat_mul_associates_with_vec() {
        let a = Mat3::<f64>::coord_rotation_x(0.4);
        let b = Mat3::<f64>::coord_rotation_z(-0.9);
        let v = Vec3::new(0.2, -0.7, 1.3);
        approx((a * b).mul_vec(v), a.mul_vec(b.mul_vec(v)));
    }
}
