//! [`WideScalar`]: the common surface of every wide (multi-state) scalar.
//!
//! PR 5's serving paths were hard-wired to the portable
//! [`Lanes<S, 4>`](crate::Lanes); this trait is what lets the portable and
//! native SIMD tiers share one code path. Anything that lane-transposes a
//! batch — the compiled-tape batch evaluator, the engine backends' wide
//! gradient overrides, the accelerator's streaming interface — is written
//! against `V: WideScalar<Elem = S>` and receives the concrete lane type
//! for the active [`ExecTier`](crate::ExecTier) through
//! [`Scalar::dispatch_wide`](crate::Scalar::dispatch_wide).
//!
//! The trait deliberately adds *nothing* numerical: arithmetic comes from
//! the [`Scalar`] supertrait, and every implementor promises per-lane
//! bit-identity with scalar execution (see the `lanes` and `simd` module
//! docs for why that holds).

use crate::scalar::Scalar;
use crate::Lanes;

/// A [`Scalar`] that evaluates `WIDTH` independent per-state values of an
/// element scalar type per operation.
///
/// Implementors: the portable [`Lanes<S, W>`] (any element type, any
/// width) and the native SIMD lane types in the `simd` module (f64/f32
/// only). Fixed-point element types always ride `Lanes` — the Q16.16
/// datapath has no native vector unit on commodity CPUs, and portable
/// lane arithmetic already models the accelerator exactly.
///
/// # Examples
///
/// ```
/// use robo_spatial::{Lanes, Scalar, WideScalar};
///
/// fn sum_lanes<V: WideScalar>(v: V) -> f64 {
///     (0..V::WIDTH).map(|l| v.lane(l).to_f64()).sum()
/// }
///
/// assert_eq!(sum_lanes(Lanes::<f64, 4>::splat(1.5)), 6.0);
/// ```
pub trait WideScalar: Scalar {
    /// The per-lane element type.
    type Elem: Scalar;

    /// Number of independent lanes evaluated per operation.
    const WIDTH: usize;

    /// Broadcasts one element into every lane.
    fn splat(value: Self::Elem) -> Self;

    /// The value in lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::WIDTH`.
    fn lane(&self, i: usize) -> Self::Elem;

    /// Overwrites lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::WIDTH`.
    fn set_lane(&mut self, i: usize, value: Self::Elem);
}

impl<S: Scalar, const W: usize> WideScalar for Lanes<S, W> {
    type Elem = S;

    const WIDTH: usize = W;

    #[inline]
    fn splat(value: S) -> Self {
        Lanes::splat(value)
    }

    #[inline]
    fn lane(&self, i: usize) -> S {
        Lanes::lane(self, i)
    }

    #[inline]
    fn set_lane(&mut self, i: usize, value: S) {
        Lanes::set_lane(self, i, value);
    }
}

/// A visitor handed to [`Scalar::dispatch_wide`](crate::Scalar::dispatch_wide).
///
/// Tier dispatch has to turn a *runtime* [`ExecTier`](crate::ExecTier)
/// value into a *compile-time* wide type; the classic visitor shape does
/// that without boxing: the caller implements `WideVisit` for a small
/// struct carrying its arguments, and `dispatch_wide` calls
/// [`WideVisit::visit`] instantiated at the tier's lane type.
///
/// # Examples
///
/// ```
/// use robo_spatial::{ExecTier, Scalar, WideScalar, WideVisit};
///
/// struct WidthOf;
/// impl<S: Scalar> WideVisit<S> for WidthOf {
///     type Out = usize;
///     fn visit<V: WideScalar<Elem = S>>(self) -> usize {
///         V::WIDTH
///     }
/// }
///
/// // Portable tier always serves the default 4-lane bundle.
/// assert_eq!(f64::dispatch_wide(ExecTier::Portable, WidthOf), 4);
/// ```
pub trait WideVisit<S: Scalar> {
    /// The dispatch result, returned unchanged from [`WideVisit::visit`].
    type Out;

    /// Runs the visitor's body at a concrete wide lane type.
    fn visit<V: WideScalar<Elem = S>>(self) -> Self::Out;
}

/// Visitor returning the dispatched type's lane width — keeps
/// `Scalar::preferred_lanes` and `Scalar::dispatch_wide` consistent by
/// construction.
pub(crate) struct WidthOf;

impl<S: Scalar> WideVisit<S> for WidthOf {
    type Out = usize;

    fn visit<V: WideScalar<Elem = S>>(self) -> usize {
        V::WIDTH
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecTier;

    #[test]
    fn lanes_implements_wide_scalar() {
        let mut v = <Lanes<f64, 4> as WideScalar>::splat(2.0);
        assert_eq!(<Lanes<f64, 4> as WideScalar>::WIDTH, 4);
        WideScalar::set_lane(&mut v, 2, 7.5);
        assert_eq!(WideScalar::lane(&v, 2), 7.5);
        assert_eq!(WideScalar::lane(&v, 0), 2.0);
    }

    struct NameOf;
    impl<S: Scalar> WideVisit<S> for NameOf {
        type Out = (String, usize);
        fn visit<V: WideScalar<Elem = S>>(self) -> (String, usize) {
            (V::name(), V::WIDTH)
        }
    }

    #[test]
    fn portable_dispatch_serves_lanes() {
        let (name, width) = f64::dispatch_wide(ExecTier::Portable, NameOf);
        assert_eq!(width, 4);
        assert!(name.contains("Lanes"), "portable tier must serve Lanes");
    }

    #[test]
    fn preferred_width_matches_dispatch() {
        for tier in ExecTier::ALL {
            let (_, width) = f64::dispatch_wide(tier, NameOf);
            assert_eq!(width, f64::preferred_lanes(tier));
            let (_, width) = f32::dispatch_wide(tier, NameOf);
            assert_eq!(width, f32::preferred_lanes(tier));
        }
    }
}
