//! Small dense dynamically-sized matrices and the LDLᵀ factorization.
//!
//! Rigid body dynamics needs an `n×n` joint-space mass matrix (`n` = number
//! of joints, at most a few dozen for the robots in the paper) and its
//! inverse. An LDLᵀ factorization is used instead of Cholesky because it
//! needs no square roots — important for running the same code path in
//! fixed-point arithmetic.

use crate::Scalar;
use core::fmt;
use core::ops::{Index, IndexMut};

/// Error returned when a factorization or solve fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorizeError {
    /// A pivot was zero or non-positive where positive-definiteness was
    /// required (matrix is singular or not positive definite).
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
    },
    /// Dimension mismatch between operands.
    DimensionMismatch,
}

impl fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            Self::DimensionMismatch => write!(f, "operand dimensions do not match"),
        }
    }
}

impl std::error::Error for FactorizeError {}

/// A dense row-major matrix with run-time dimensions.
///
/// # Examples
///
/// ```
/// use robo_spatial::MatN;
///
/// let mut m = MatN::<f64>::identity(3);
/// m[(0, 2)] = 5.0;
/// let y = m.mul_vec(&[1.0, 2.0, 3.0]);
/// assert_eq!(y, vec![16.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatN<S> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> MatN<S> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![S::zero(); rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut out = Self::zeros(n, n);
        for i in 0..n {
            out[(i, i)] = S::one();
        }
        out
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: &[S]) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A borrowed view of the underlying row-major data.
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Converts between scalar types through `f64`.
    pub fn cast<T: Scalar>(&self) -> MatN<T> {
        MatN {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| T::from_f64(x.to_f64())).collect(),
        }
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[S]) -> Vec<S> {
        assert_eq!(v.len(), self.cols, "mul_vec dimension mismatch");
        let mut out = vec![S::zero(); self.rows];
        for i in 0..self.rows {
            let mut acc = S::zero();
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (a, b) in row.iter().zip(v.iter()) {
                acc += *a * *b;
            }
            out[i] = acc;
        }
        out
    }

    /// Matrix–vector product written into `out`, which is resized as
    /// needed. Steady-state reuse of the same `out` performs no heap
    /// allocation. Produces bit-identical results to [`MatN::mul_vec`].
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec_into(&self, v: &[S], out: &mut Vec<S>) {
        assert_eq!(v.len(), self.cols, "mul_vec dimension mismatch");
        out.clear();
        out.resize(self.rows, S::zero());
        for i in 0..self.rows {
            let mut acc = S::zero();
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (a, b) in row.iter().zip(v.iter()) {
                acc += *a * *b;
            }
            out[i] = acc;
        }
    }

    /// Reshapes to `rows × cols` and sets every entry to zero, reusing the
    /// existing storage when its capacity allows.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, S::zero());
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn mul_mat(&self, rhs: &MatN<S>) -> MatN<S> {
        assert_eq!(self.cols, rhs.rows, "mul_mat dimension mismatch");
        let mut out = MatN::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == S::zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Computes `out = (−self) · rhs` without materializing the negated
    /// matrix, writing into `out` (resized as needed).
    ///
    /// The loop order, accumulation order, and the skip of zero entries all
    /// replicate [`MatN::mul_mat`] applied to an explicitly negated copy of
    /// `self`, so the result is bit-identical to that two-step form.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn neg_mul_mat_into(&self, rhs: &MatN<S>, out: &mut MatN<S>) {
        assert_eq!(self.cols, rhs.rows, "mul_mat dimension mismatch");
        out.resize_zeroed(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = -self[(i, k)];
                if a == S::zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
    }

    /// The transpose.
    pub fn transpose(&self) -> MatN<S> {
        let mut out = MatN::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Maximum absolute difference from `other`, as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn max_abs_diff(&self, other: &MatN<S>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Largest absolute entry, as `f64`.
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|a| a.abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// Whether the matrix is symmetric to within `tol` (in `f64`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)].to_f64() - self[(j, i)].to_f64()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Computes the LDLᵀ factorization of a symmetric positive-definite
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive, and [`FactorizeError::DimensionMismatch`] if the
    /// matrix is not square.
    pub fn ldlt(&self) -> Result<Ldlt<S>, FactorizeError> {
        if self.rows != self.cols {
            return Err(FactorizeError::DimensionMismatch);
        }
        let n = self.rows;
        let mut l = MatN::identity(n);
        let mut d = vec![S::zero(); n];
        for j in 0..n {
            // d_j = A_jj − Σ_{k<j} L_jk² d_k
            let mut dj = self[(j, j)];
            for k in 0..j {
                dj -= l[(j, k)] * l[(j, k)] * d[k];
            }
            if dj.to_f64() <= 0.0 {
                return Err(FactorizeError::NotPositiveDefinite { pivot: j });
            }
            d[j] = dj;
            for i in (j + 1)..n {
                let mut v = self[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)] * d[k];
                }
                l[(i, j)] = v / dj;
            }
        }
        Ok(Ldlt { l, d })
    }

    /// Inverts a symmetric positive-definite matrix via LDLᵀ.
    ///
    /// # Errors
    ///
    /// See [`MatN::ldlt`].
    pub fn inverse_spd(&self) -> Result<MatN<S>, FactorizeError> {
        let f = self.ldlt()?;
        let n = self.rows;
        let mut out = MatN::zeros(n, n);
        let mut e = vec![S::zero(); n];
        for j in 0..n {
            e.iter_mut().for_each(|x| *x = S::zero());
            e[j] = S::one();
            let col = f.solve(&e)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }
}

/// The LDLᵀ factorization of a symmetric positive-definite matrix, produced
/// by [`MatN::ldlt`].
#[derive(Debug, Clone)]
pub struct Ldlt<S> {
    l: MatN<S>,
    d: Vec<S>,
}

impl<S: Scalar> Ldlt<S> {
    /// Solves `A x = b` given the factorization of `A`.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError::DimensionMismatch`] if `b.len()` differs
    /// from the factored dimension.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, FactorizeError> {
        let mut y = b.to_vec();
        self.solve_in_place(&mut y)?;
        Ok(y)
    }

    /// Solves `A x = b` in place: on entry `b` holds the right-hand side,
    /// on successful return it holds the solution. No heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError::DimensionMismatch`] if `b.len()` differs
    /// from the factored dimension (in which case `b` is untouched).
    pub fn solve_in_place(&self, b: &mut [S]) -> Result<(), FactorizeError> {
        let n = self.d.len();
        if b.len() != n {
            return Err(FactorizeError::DimensionMismatch);
        }
        // Forward substitution: L y = b.
        for i in 0..n {
            for k in 0..i {
                let lik = self.l[(i, k)];
                b[i] -= lik * b[k];
            }
        }
        // Diagonal: D z = y.
        for i in 0..n {
            b[i] /= self.d[i];
        }
        // Back substitution: Lᵀ x = z.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let lki = self.l[(k, i)];
                b[i] -= lki * b[k];
            }
        }
        Ok(())
    }

    /// The unit lower-triangular factor `L`.
    pub fn l(&self) -> &MatN<S> {
        &self.l
    }

    /// The diagonal factor `D`.
    pub fn d(&self) -> &[S] {
        &self.d
    }
}

impl<S: Scalar> Index<(usize, usize)> for MatN<S> {
    type Output = S;

    fn index(&self, (i, j): (usize, usize)) -> &S {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for MatN<S> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> MatN<f64> {
        // A A^T + n·I is symmetric positive definite.
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = MatN::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
        }
        let mut m = a.mul_mat(&a.transpose());
        for i in 0..n {
            m[(i, i)] += n as f64;
        }
        m
    }

    #[test]
    fn mul_vec_basics() {
        let m = MatN::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn ldlt_reconstructs() {
        let m = spd(6, 3);
        let f = m.ldlt().unwrap();
        // L D Lᵀ = M.
        let n = m.rows();
        let mut d = MatN::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = f.d()[i];
        }
        let rebuilt = f.l().mul_mat(&d).mul_mat(&f.l().transpose());
        assert!(rebuilt.max_abs_diff(&m) < 1e-10);
    }

    #[test]
    fn solve_matches_direct() {
        let m = spd(7, 11);
        let b: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let x = m.ldlt().unwrap().solve(&b).unwrap();
        let back = m.mul_vec(&x);
        for (bi, yi) in b.iter().zip(back.iter()) {
            assert!((bi - yi).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_spd_round_trip() {
        let m = spd(5, 17);
        let inv = m.inverse_spd().unwrap();
        let eye = m.mul_mat(&inv);
        assert!(eye.max_abs_diff(&MatN::identity(5)) < 1e-10);
    }

    #[test]
    fn non_spd_rejected() {
        let mut m = MatN::<f64>::identity(3);
        m[(2, 2)] = -1.0;
        assert_eq!(
            m.ldlt().unwrap_err(),
            FactorizeError::NotPositiveDefinite { pivot: 2 }
        );
    }

    #[test]
    fn non_square_rejected() {
        let m = MatN::<f64>::zeros(2, 3);
        assert_eq!(m.ldlt().unwrap_err(), FactorizeError::DimensionMismatch);
    }

    #[test]
    fn symmetry_check() {
        let m = spd(4, 23);
        assert!(m.is_symmetric(1e-12));
        let mut asym = m.clone();
        asym[(0, 1)] += 1.0;
        assert!(!asym.is_symmetric(1e-12));
    }

    #[test]
    fn transpose_shape() {
        let m = MatN::<f64>::zeros(2, 5);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (5, 2));
    }

    #[test]
    fn mul_vec_into_matches_allocating() {
        let m = spd(6, 29);
        let v: Vec<f64> = (0..6).map(|i| 0.7 * i as f64 - 2.0).collect();
        let mut out = Vec::new();
        for _ in 0..3 {
            m.mul_vec_into(&v, &mut out);
            assert_eq!(out, m.mul_vec(&v));
        }
        // Reused buffer of the wrong size is corrected.
        let mut wrong = vec![9.0; 11];
        m.mul_vec_into(&v, &mut wrong);
        assert_eq!(wrong, m.mul_vec(&v));
    }

    #[test]
    fn neg_mul_mat_into_matches_negated_mul_mat() {
        let a = spd(5, 31);
        let b = spd(5, 37);
        let mut negated = a.clone();
        for i in 0..5 {
            for j in 0..5 {
                negated[(i, j)] = -negated[(i, j)];
            }
        }
        let expected = negated.mul_mat(&b);
        let mut out = MatN::zeros(1, 1);
        for _ in 0..2 {
            a.neg_mul_mat_into(&b, &mut out);
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn solve_in_place_matches_solve() {
        let m = spd(7, 41);
        let f = m.ldlt().unwrap();
        let b: Vec<f64> = (0..7).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let mut x = b.clone();
        f.solve_in_place(&mut x).unwrap();
        assert_eq!(x, f.solve(&b).unwrap());
        let mut short = vec![0.0; 3];
        assert_eq!(
            f.solve_in_place(&mut short).unwrap_err(),
            FactorizeError::DimensionMismatch
        );
    }

    #[test]
    fn resize_zeroed_clears_and_reshapes() {
        let mut m = spd(4, 43);
        m.resize_zeroed(2, 6);
        assert_eq!((m.rows(), m.cols()), (2, 6));
        assert_eq!(m.max_abs(), 0.0);
    }
}
