//! Plücker spatial coordinate transforms.

use crate::{Force, Mat3, Mat6, Motion, Scalar, Vec3};

/// A spatial coordinate transform `ᴮX_A` from frame A (parent) to frame B
/// (child), represented structurally by a rotation and a translation.
///
/// `rot` is the coordinate rotation `E` (expresses A-frame vectors in B
/// coordinates) and `pos` is the position `r` of B's origin, expressed in A
/// coordinates. As a dense 6×6 acting on motion vectors this is
///
/// ```text
///     [  E      0 ]
/// X = [ -E r̂    E ]
/// ```
///
/// and forces transform by `X⁻ᵀ = [[E, -E r̂], [0, E]]`.
///
/// # Examples
///
/// ```
/// use robo_spatial::{Transform, Mat3, Vec3, Motion};
///
/// // Pure translation along z: a rotation about the parent origin induces a
/// // linear velocity -r × ω at the displaced child origin.
/// let x = Transform::<f64>::new(Mat3::identity(), Vec3::new(0.0, 0.0, 2.0));
/// let w = Motion::new(Vec3::new(1.0, 0.0, 0.0), Vec3::zero());
/// let v = x.apply_motion(w);
/// assert_eq!(v.lin, Vec3::new(0.0, -2.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transform<S> {
    /// Coordinate rotation `E` from A to B.
    pub rot: Mat3<S>,
    /// Position `r` of B's origin in A coordinates.
    pub pos: Vec3<S>,
}

impl<S: Scalar> Default for Transform<S> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<S: Scalar> Transform<S> {
    /// Creates a transform from a coordinate rotation and a translation.
    pub fn new(rot: Mat3<S>, pos: Vec3<S>) -> Self {
        Self { rot, pos }
    }

    /// The identity transform.
    pub fn identity() -> Self {
        Self::new(Mat3::identity(), Vec3::zero())
    }

    /// A pure translation by `pos`.
    pub fn translation(pos: Vec3<S>) -> Self {
        Self::new(Mat3::identity(), pos)
    }

    /// A pure rotation.
    pub fn rotation(rot: Mat3<S>) -> Self {
        Self::new(rot, Vec3::zero())
    }

    /// Converts between scalar types through `f64`.
    pub fn cast<T: Scalar>(self) -> Transform<T> {
        Transform::new(self.rot.cast(), self.pos.cast())
    }

    /// Composition: if `self` is `ᶜX_B` and `inner` is `ᴮX_A`, returns `ᶜX_A`.
    ///
    /// ```
    /// # use robo_spatial::{Transform, Mat3, Vec3, Motion};
    /// let a2b = Transform::<f64>::new(Mat3::coord_rotation_z(0.3), Vec3::new(0.1, 0.0, 0.0));
    /// let b2c = Transform::<f64>::new(Mat3::coord_rotation_x(-0.7), Vec3::new(0.0, 0.2, 0.0));
    /// let a2c = b2c.compose(&a2b);
    /// let m = Motion::new(Vec3::new(0.3, -0.1, 0.2), Vec3::new(1.0, 0.5, -0.4));
    /// let direct = a2c.apply_motion(m);
    /// let stepped = b2c.apply_motion(a2b.apply_motion(m));
    /// assert!((direct.ang - stepped.ang).max_abs() < 1e-12);
    /// ```
    pub fn compose(&self, inner: &Transform<S>) -> Transform<S> {
        Transform::new(
            self.rot * inner.rot,
            inner.pos + inner.rot.tr_mul_vec(self.pos),
        )
    }

    /// Transforms a motion vector from A coordinates to B coordinates.
    #[inline]
    pub fn apply_motion(&self, m: Motion<S>) -> Motion<S> {
        Motion::new(
            self.rot.mul_vec(m.ang),
            self.rot.mul_vec(m.lin - self.pos.cross(m.ang)),
        )
    }

    /// Transforms a motion vector from B coordinates back to A coordinates
    /// (applies `X⁻¹`).
    #[inline]
    pub fn inv_apply_motion(&self, m: Motion<S>) -> Motion<S> {
        let ang = self.rot.tr_mul_vec(m.ang);
        Motion::new(ang, self.rot.tr_mul_vec(m.lin) + self.pos.cross(ang))
    }

    /// Transforms a force vector from A coordinates to B coordinates
    /// (applies `X⁻ᵀ`, the dual transform).
    #[inline]
    pub fn apply_force(&self, f: Force<S>) -> Force<S> {
        Force::new(
            self.rot.mul_vec(f.ang - self.pos.cross(f.lin)),
            self.rot.mul_vec(f.lin),
        )
    }

    /// Transforms a force vector from B coordinates back to A coordinates
    /// (applies `Xᵀ`) — the operation in the backward pass of the RNEA,
    /// `f_λ += ᵢXᵀ_λ f_i` (Algorithm 2, line 8).
    #[inline]
    pub fn tr_apply_force(&self, f: Force<S>) -> Force<S> {
        let lin = self.rot.tr_mul_vec(f.lin);
        Force::new(self.rot.tr_mul_vec(f.ang) + self.pos.cross(lin), lin)
    }

    /// The inverse transform `ᴬX_B`.
    pub fn inverse(&self) -> Transform<S> {
        Transform::new(self.rot.transpose(), -self.rot.mul_vec(self.pos))
    }

    /// The dense 6×6 motion-transform matrix (used by composite-rigid-body
    /// style algorithms and by the sparsity analysis).
    pub fn to_mat6(&self) -> Mat6<S> {
        let e = self.rot;
        let lower_left = -(e * Mat3::skew(self.pos));
        Mat6::from_blocks(e, Mat3::zero(), lower_left, e)
    }

    /// Whether all entries are finite / non-saturated.
    pub fn is_valid(&self) -> bool {
        self.rot.is_valid() && self.pos.is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Transform<f64> {
        Transform::new(
            Mat3::coord_rotation_z(0.8) * Mat3::coord_rotation_x(-0.4),
            Vec3::new(0.3, -0.2, 0.5),
        )
    }

    fn sample_motion() -> Motion<f64> {
        Motion::new(Vec3::new(0.1, 0.7, -0.3), Vec3::new(-0.9, 0.2, 0.4))
    }

    #[test]
    fn inverse_round_trips_motion() {
        let x = sample();
        let m = sample_motion();
        let back = x.inv_apply_motion(x.apply_motion(m));
        assert!((back - m).max_abs() < 1e-12);
        let back2 = x.inverse().apply_motion(x.apply_motion(m));
        assert!((back2 - m).max_abs() < 1e-12);
    }

    #[test]
    fn force_transform_is_dual() {
        // Power is invariant: (X m) · (X⁻ᵀ f) = m · f.
        let x = sample();
        let m = sample_motion();
        let f = Force::new(Vec3::new(0.5, -0.1, 0.2), Vec3::new(0.3, 0.9, -0.6));
        let lhs = x.apply_motion(m).dot(x.apply_force(f));
        assert!((lhs - m.dot(f)).abs() < 1e-12);
    }

    #[test]
    fn tr_apply_force_is_transpose_of_motion_transform() {
        // mᵀ (Xᵀ f) = (X m)ᵀ f.
        let x = sample();
        let m = sample_motion();
        let f = Force::new(Vec3::new(-0.4, 0.8, 0.1), Vec3::new(0.2, -0.3, 0.7));
        let lhs = m.dot(x.tr_apply_force(f));
        let rhs = x.apply_motion(m).dot(f);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn dense_matrix_agrees_with_structural_apply() {
        let x = sample();
        let m = sample_motion();
        let dense = x.to_mat6().mul_array(m.to_array());
        let structural = x.apply_motion(m).to_array();
        for i in 0..6 {
            assert!((dense[i] - structural[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a2b = sample();
        let b2c = Transform::new(Mat3::coord_rotation_y(1.2), Vec3::new(-0.1, 0.4, 0.2));
        let a2c = b2c.compose(&a2b);
        let m = sample_motion();
        let direct = a2c.apply_motion(m);
        let stepped = b2c.apply_motion(a2b.apply_motion(m));
        assert!((direct - stepped).max_abs() < 1e-12);

        let f = Force::new(Vec3::new(0.5, 0.1, -0.2), Vec3::new(0.9, -0.3, 0.6));
        let direct_f = a2c.tr_apply_force(f);
        let stepped_f = a2b.tr_apply_force(b2c.tr_apply_force(f));
        assert!((direct_f - stepped_f).max_abs() < 1e-12);
    }

    #[test]
    fn identity_is_neutral() {
        let m = sample_motion();
        let x = Transform::<f64>::identity();
        assert_eq!(x.apply_motion(m), m);
        assert_eq!(x.compose(&sample()), sample());
    }
}
