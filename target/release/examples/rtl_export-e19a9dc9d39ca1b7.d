/root/repo/target/release/examples/rtl_export-e19a9dc9d39ca1b7.d: examples/rtl_export.rs

/root/repo/target/release/examples/rtl_export-e19a9dc9d39ca1b7: examples/rtl_export.rs

examples/rtl_export.rs:
