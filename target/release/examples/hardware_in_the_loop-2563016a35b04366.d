/root/repo/target/release/examples/hardware_in_the_loop-2563016a35b04366.d: examples/hardware_in_the_loop.rs

/root/repo/target/release/examples/hardware_in_the_loop-2563016a35b04366: examples/hardware_in_the_loop.rs

examples/hardware_in_the_loop.rs:
