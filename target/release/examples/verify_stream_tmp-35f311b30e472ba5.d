/root/repo/target/release/examples/verify_stream_tmp-35f311b30e472ba5.d: examples/verify_stream_tmp.rs

/root/repo/target/release/examples/verify_stream_tmp-35f311b30e472ba5: examples/verify_stream_tmp.rs

examples/verify_stream_tmp.rs:
