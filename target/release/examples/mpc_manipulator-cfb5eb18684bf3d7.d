/root/repo/target/release/examples/mpc_manipulator-cfb5eb18684bf3d7.d: examples/mpc_manipulator.rs

/root/repo/target/release/examples/mpc_manipulator-cfb5eb18684bf3d7: examples/mpc_manipulator.rs

examples/mpc_manipulator.rs:
