/root/repo/target/release/deps/fig12_precision-4c3ceb33735f0959.d: crates/bench/src/bin/fig12_precision.rs

/root/repo/target/release/deps/fig12_precision-4c3ceb33735f0959: crates/bench/src/bin/fig12_precision.rs

crates/bench/src/bin/fig12_precision.rs:
