/root/repo/target/release/deps/robo_dynamics-f7762b700ee1be89.d: crates/dynamics/src/lib.rs crates/dynamics/src/crba.rs crates/dynamics/src/deriv.rs crates/dynamics/src/fd.rs crates/dynamics/src/findiff.rs crates/dynamics/src/fk.rs crates/dynamics/src/model.rs crates/dynamics/src/rnea.rs crates/dynamics/src/batch.rs

/root/repo/target/release/deps/robo_dynamics-f7762b700ee1be89: crates/dynamics/src/lib.rs crates/dynamics/src/crba.rs crates/dynamics/src/deriv.rs crates/dynamics/src/fd.rs crates/dynamics/src/findiff.rs crates/dynamics/src/fk.rs crates/dynamics/src/model.rs crates/dynamics/src/rnea.rs crates/dynamics/src/batch.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/crba.rs:
crates/dynamics/src/deriv.rs:
crates/dynamics/src/fd.rs:
crates/dynamics/src/findiff.rs:
crates/dynamics/src/fk.rs:
crates/dynamics/src/model.rs:
crates/dynamics/src/rnea.rs:
crates/dynamics/src/batch.rs:
