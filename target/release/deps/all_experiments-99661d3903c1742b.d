/root/repo/target/release/deps/all_experiments-99661d3903c1742b.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-99661d3903c1742b: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
