/root/repo/target/release/deps/robomorphic-70a9b20bbd759daf.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/librobomorphic-70a9b20bbd759daf.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/librobomorphic-70a9b20bbd759daf.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
