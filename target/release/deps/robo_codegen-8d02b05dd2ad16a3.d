/root/repo/target/release/deps/robo_codegen-8d02b05dd2ad16a3.d: crates/codegen/src/lib.rs crates/codegen/src/compiled.rs crates/codegen/src/netlist.rs crates/codegen/src/opt.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

/root/repo/target/release/deps/librobo_codegen-8d02b05dd2ad16a3.rlib: crates/codegen/src/lib.rs crates/codegen/src/compiled.rs crates/codegen/src/netlist.rs crates/codegen/src/opt.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

/root/repo/target/release/deps/librobo_codegen-8d02b05dd2ad16a3.rmeta: crates/codegen/src/lib.rs crates/codegen/src/compiled.rs crates/codegen/src/netlist.rs crates/codegen/src/opt.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

crates/codegen/src/lib.rs:
crates/codegen/src/compiled.rs:
crates/codegen/src/netlist.rs:
crates/codegen/src/opt.rs:
crates/codegen/src/top.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/xunit_gen.rs:
