/root/repo/target/release/deps/robomorphic_core-001f8e1ba9aee26a.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

/root/repo/target/release/deps/librobomorphic_core-001f8e1ba9aee26a.rlib: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

/root/repo/target/release/deps/librobomorphic_core-001f8e1ba9aee26a.rmeta: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/kinematics.rs:
crates/core/src/platform.rs:
crates/core/src/template.rs:
crates/core/src/units.rs:
