/root/repo/target/release/deps/robo_fixed-a17474ea3e3fbe0a.d: crates/fixed/src/lib.rs

/root/repo/target/release/deps/librobo_fixed-a17474ea3e3fbe0a.rlib: crates/fixed/src/lib.rs

/root/repo/target/release/deps/librobo_fixed-a17474ea3e3fbe0a.rmeta: crates/fixed/src/lib.rs

crates/fixed/src/lib.rs:
