/root/repo/target/release/deps/robo_model-1e2085161417b348.d: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

/root/repo/target/release/deps/robo_model-1e2085161417b348: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

crates/model/src/lib.rs:
crates/model/src/joint.rs:
crates/model/src/parse.rs:
crates/model/src/robot.rs:
crates/model/src/robots.rs:
crates/model/src/urdf.rs:
