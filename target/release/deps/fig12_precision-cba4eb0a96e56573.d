/root/repo/target/release/deps/fig12_precision-cba4eb0a96e56573.d: crates/bench/src/bin/fig12_precision.rs

/root/repo/target/release/deps/fig12_precision-cba4eb0a96e56573: crates/bench/src/bin/fig12_precision.rs

crates/bench/src/bin/fig12_precision.rs:
