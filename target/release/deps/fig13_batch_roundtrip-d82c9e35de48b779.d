/root/repo/target/release/deps/fig13_batch_roundtrip-d82c9e35de48b779.d: crates/bench/benches/fig13_batch_roundtrip.rs

/root/repo/target/release/deps/fig13_batch_roundtrip-d82c9e35de48b779: crates/bench/benches/fig13_batch_roundtrip.rs

crates/bench/benches/fig13_batch_roundtrip.rs:
