/root/repo/target/release/deps/robo_dynamics-d18f395b0d6db2f0.d: crates/dynamics/src/lib.rs crates/dynamics/src/crba.rs crates/dynamics/src/deriv.rs crates/dynamics/src/fd.rs crates/dynamics/src/findiff.rs crates/dynamics/src/fk.rs crates/dynamics/src/model.rs crates/dynamics/src/rnea.rs crates/dynamics/src/batch.rs

/root/repo/target/release/deps/librobo_dynamics-d18f395b0d6db2f0.rlib: crates/dynamics/src/lib.rs crates/dynamics/src/crba.rs crates/dynamics/src/deriv.rs crates/dynamics/src/fd.rs crates/dynamics/src/findiff.rs crates/dynamics/src/fk.rs crates/dynamics/src/model.rs crates/dynamics/src/rnea.rs crates/dynamics/src/batch.rs

/root/repo/target/release/deps/librobo_dynamics-d18f395b0d6db2f0.rmeta: crates/dynamics/src/lib.rs crates/dynamics/src/crba.rs crates/dynamics/src/deriv.rs crates/dynamics/src/fd.rs crates/dynamics/src/findiff.rs crates/dynamics/src/fk.rs crates/dynamics/src/model.rs crates/dynamics/src/rnea.rs crates/dynamics/src/batch.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/crba.rs:
crates/dynamics/src/deriv.rs:
crates/dynamics/src/fd.rs:
crates/dynamics/src/findiff.rs:
crates/dynamics/src/fk.rs:
crates/dynamics/src/model.rs:
crates/dynamics/src/rnea.rs:
crates/dynamics/src/batch.rs:
