/root/repo/target/release/deps/ablation_accumulator-bf042cfb7fe121a6.d: crates/bench/src/bin/ablation_accumulator.rs

/root/repo/target/release/deps/ablation_accumulator-bf042cfb7fe121a6: crates/bench/src/bin/ablation_accumulator.rs

crates/bench/src/bin/ablation_accumulator.rs:
