/root/repo/target/release/deps/robo_sim-19f3173f1319c966.d: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/release/deps/librobo_sim-19f3173f1319c966.rlib: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/release/deps/librobo_sim-19f3173f1319c966.rmeta: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

crates/sim/src/lib.rs:
crates/sim/src/accel_sim.rs:
crates/sim/src/coproc.rs:
crates/sim/src/stepper.rs:
crates/sim/src/xunit.rs:
