/root/repo/target/release/deps/table2_asic-c27cee8a7fad1984.d: crates/bench/src/bin/table2_asic.rs

/root/repo/target/release/deps/table2_asic-c27cee8a7fad1984: crates/bench/src/bin/table2_asic.rs

crates/bench/src/bin/table2_asic.rs:
