/root/repo/target/release/deps/sec64_soc-306283457d53182b.d: crates/bench/src/bin/sec64_soc.rs

/root/repo/target/release/deps/sec64_soc-306283457d53182b: crates/bench/src/bin/sec64_soc.rs

crates/bench/src/bin/sec64_soc.rs:
