/root/repo/target/release/deps/sec4_sparsity_example-72f5b232fbee3bb6.d: crates/bench/src/bin/sec4_sparsity_example.rs

/root/repo/target/release/deps/sec4_sparsity_example-72f5b232fbee3bb6: crates/bench/src/bin/sec4_sparsity_example.rs

crates/bench/src/bin/sec4_sparsity_example.rs:
