/root/repo/target/release/deps/robo_sim-f7c7e7da1a4229df.d: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/release/deps/librobo_sim-f7c7e7da1a4229df.rlib: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/release/deps/librobo_sim-f7c7e7da1a4229df.rmeta: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

crates/sim/src/lib.rs:
crates/sim/src/accel_sim.rs:
crates/sim/src/coproc.rs:
crates/sim/src/stepper.rs:
crates/sim/src/xunit.rs:
