/root/repo/target/release/deps/robo_sparsity-d352422ed676ca10.d: crates/sparsity/src/lib.rs

/root/repo/target/release/deps/robo_sparsity-d352422ed676ca10: crates/sparsity/src/lib.rs

crates/sparsity/src/lib.rs:
