/root/repo/target/release/deps/fig10_single_latency-4fcebf1f7bd210c5.d: crates/bench/src/bin/fig10_single_latency.rs

/root/repo/target/release/deps/fig10_single_latency-4fcebf1f7bd210c5: crates/bench/src/bin/fig10_single_latency.rs

crates/bench/src/bin/fig10_single_latency.rs:
