/root/repo/target/release/deps/sweep_links-8c539314542f3481.d: crates/bench/src/bin/sweep_links.rs

/root/repo/target/release/deps/sweep_links-8c539314542f3481: crates/bench/src/bin/sweep_links.rs

crates/bench/src/bin/sweep_links.rs:
