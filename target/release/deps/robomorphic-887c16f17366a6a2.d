/root/repo/target/release/deps/robomorphic-887c16f17366a6a2.d: src/bin/robomorphic.rs

/root/repo/target/release/deps/robomorphic-887c16f17366a6a2: src/bin/robomorphic.rs

src/bin/robomorphic.rs:
