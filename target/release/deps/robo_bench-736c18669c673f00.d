/root/repo/target/release/deps/robo_bench-736c18669c673f00.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/robo_bench-736c18669c673f00: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
