/root/repo/target/release/deps/robo_bench-956cf10239e10d38.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/librobo_bench-956cf10239e10d38.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/librobo_bench-956cf10239e10d38.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
