/root/repo/target/release/deps/ablation_accumulator-4cdacf7b3b82c7f0.d: crates/bench/src/bin/ablation_accumulator.rs

/root/repo/target/release/deps/ablation_accumulator-4cdacf7b3b82c7f0: crates/bench/src/bin/ablation_accumulator.rs

crates/bench/src/bin/ablation_accumulator.rs:
