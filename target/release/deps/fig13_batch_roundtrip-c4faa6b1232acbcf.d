/root/repo/target/release/deps/fig13_batch_roundtrip-c4faa6b1232acbcf.d: crates/bench/benches/fig13_batch_roundtrip.rs

/root/repo/target/release/deps/fig13_batch_roundtrip-c4faa6b1232acbcf: crates/bench/benches/fig13_batch_roundtrip.rs

crates/bench/benches/fig13_batch_roundtrip.rs:
