/root/repo/target/release/deps/robomorphic-6c152930732c2eb5.d: src/bin/robomorphic.rs

/root/repo/target/release/deps/robomorphic-6c152930732c2eb5: src/bin/robomorphic.rs

src/bin/robomorphic.rs:
