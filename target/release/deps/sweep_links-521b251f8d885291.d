/root/repo/target/release/deps/sweep_links-521b251f8d885291.d: crates/bench/src/bin/sweep_links.rs

/root/repo/target/release/deps/sweep_links-521b251f8d885291: crates/bench/src/bin/sweep_links.rs

crates/bench/src/bin/sweep_links.rs:
