/root/repo/target/release/deps/codegen_stats-cce106bca89843ff.d: crates/bench/src/bin/codegen_stats.rs

/root/repo/target/release/deps/codegen_stats-cce106bca89843ff: crates/bench/src/bin/codegen_stats.rs

crates/bench/src/bin/codegen_stats.rs:
