/root/repo/target/release/deps/robomorphic-ae6fde730a0d83d5.d: src/bin/robomorphic.rs

/root/repo/target/release/deps/robomorphic-ae6fde730a0d83d5: src/bin/robomorphic.rs

src/bin/robomorphic.rs:
