/root/repo/target/release/deps/ablation_folding-840677f12063d142.d: crates/bench/src/bin/ablation_folding.rs

/root/repo/target/release/deps/ablation_folding-840677f12063d142: crates/bench/src/bin/ablation_folding.rs

crates/bench/src/bin/ablation_folding.rs:
