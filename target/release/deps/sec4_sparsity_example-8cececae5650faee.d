/root/repo/target/release/deps/sec4_sparsity_example-8cececae5650faee.d: crates/bench/src/bin/sec4_sparsity_example.rs

/root/repo/target/release/deps/sec4_sparsity_example-8cececae5650faee: crates/bench/src/bin/sec4_sparsity_example.rs

crates/bench/src/bin/sec4_sparsity_example.rs:
