/root/repo/target/release/deps/substrate_extras-304b7e2bcdf10f69.d: crates/bench/benches/substrate_extras.rs

/root/repo/target/release/deps/substrate_extras-304b7e2bcdf10f69: crates/bench/benches/substrate_extras.rs

crates/bench/benches/substrate_extras.rs:
