/root/repo/target/release/deps/robo_profile-a3b60cf8104f25e5.d: crates/profile/src/lib.rs

/root/repo/target/release/deps/robo_profile-a3b60cf8104f25e5: crates/profile/src/lib.rs

crates/profile/src/lib.rs:
