/root/repo/target/release/deps/sec4_sparsity_example-93848935814b61dc.d: crates/bench/src/bin/sec4_sparsity_example.rs

/root/repo/target/release/deps/sec4_sparsity_example-93848935814b61dc: crates/bench/src/bin/sec4_sparsity_example.rs

crates/bench/src/bin/sec4_sparsity_example.rs:
