/root/repo/target/release/deps/sec8_workload-c2904ab4fd1c1a4e.d: crates/bench/src/bin/sec8_workload.rs

/root/repo/target/release/deps/sec8_workload-c2904ab4fd1c1a4e: crates/bench/src/bin/sec8_workload.rs

crates/bench/src/bin/sec8_workload.rs:
