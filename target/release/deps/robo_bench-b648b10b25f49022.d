/root/repo/target/release/deps/robo_bench-b648b10b25f49022.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/librobo_bench-b648b10b25f49022.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/librobo_bench-b648b10b25f49022.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
