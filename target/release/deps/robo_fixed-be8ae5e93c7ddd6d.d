/root/repo/target/release/deps/robo_fixed-be8ae5e93c7ddd6d.d: crates/fixed/src/lib.rs

/root/repo/target/release/deps/robo_fixed-be8ae5e93c7ddd6d: crates/fixed/src/lib.rs

crates/fixed/src/lib.rs:
