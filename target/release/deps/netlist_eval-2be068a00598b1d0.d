/root/repo/target/release/deps/netlist_eval-2be068a00598b1d0.d: crates/bench/benches/netlist_eval.rs

/root/repo/target/release/deps/netlist_eval-2be068a00598b1d0: crates/bench/benches/netlist_eval.rs

crates/bench/benches/netlist_eval.rs:
