/root/repo/target/release/deps/sec7_other_kernels-2d1d31d12ae204f9.d: crates/bench/src/bin/sec7_other_kernels.rs

/root/repo/target/release/deps/sec7_other_kernels-2d1d31d12ae204f9: crates/bench/src/bin/sec7_other_kernels.rs

crates/bench/src/bin/sec7_other_kernels.rs:
