/root/repo/target/release/deps/sec7_other_robots-21b569eede109416.d: crates/bench/src/bin/sec7_other_robots.rs

/root/repo/target/release/deps/sec7_other_robots-21b569eede109416: crates/bench/src/bin/sec7_other_robots.rs

crates/bench/src/bin/sec7_other_robots.rs:
