/root/repo/target/release/deps/fig11_sparsity_ops-af326e5eb96d3555.d: crates/bench/src/bin/fig11_sparsity_ops.rs

/root/repo/target/release/deps/fig11_sparsity_ops-af326e5eb96d3555: crates/bench/src/bin/fig11_sparsity_ops.rs

crates/bench/src/bin/fig11_sparsity_ops.rs:
