/root/repo/target/release/deps/robo_codegen-218e407e8d1d3756.d: crates/codegen/src/lib.rs crates/codegen/src/netlist.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

/root/repo/target/release/deps/librobo_codegen-218e407e8d1d3756.rlib: crates/codegen/src/lib.rs crates/codegen/src/netlist.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

/root/repo/target/release/deps/librobo_codegen-218e407e8d1d3756.rmeta: crates/codegen/src/lib.rs crates/codegen/src/netlist.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

crates/codegen/src/lib.rs:
crates/codegen/src/netlist.rs:
crates/codegen/src/top.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/xunit_gen.rs:
