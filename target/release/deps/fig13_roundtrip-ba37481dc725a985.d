/root/repo/target/release/deps/fig13_roundtrip-ba37481dc725a985.d: crates/bench/src/bin/fig13_roundtrip.rs

/root/repo/target/release/deps/fig13_roundtrip-ba37481dc725a985: crates/bench/src/bin/fig13_roundtrip.rs

crates/bench/src/bin/fig13_roundtrip.rs:
