/root/repo/target/release/deps/fig14_asic_latency-c9ad6cb3a997d6f8.d: crates/bench/src/bin/fig14_asic_latency.rs

/root/repo/target/release/deps/fig14_asic_latency-c9ad6cb3a997d6f8: crates/bench/src/bin/fig14_asic_latency.rs

crates/bench/src/bin/fig14_asic_latency.rs:
