/root/repo/target/release/deps/robo_baselines-9bdbd0d99fcf04f2.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

/root/repo/target/release/deps/librobo_baselines-9bdbd0d99fcf04f2.rlib: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

/root/repo/target/release/deps/librobo_baselines-9bdbd0d99fcf04f2.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/pool.rs:
