/root/repo/target/release/deps/sec64_soc-f612133e28523609.d: crates/bench/src/bin/sec64_soc.rs

/root/repo/target/release/deps/sec64_soc-f612133e28523609: crates/bench/src/bin/sec64_soc.rs

crates/bench/src/bin/sec64_soc.rs:
