/root/repo/target/release/deps/fig10_kernel_latency-eeb33ab83cb82e30.d: crates/bench/benches/fig10_kernel_latency.rs

/root/repo/target/release/deps/fig10_kernel_latency-eeb33ab83cb82e30: crates/bench/benches/fig10_kernel_latency.rs

crates/bench/benches/fig10_kernel_latency.rs:
