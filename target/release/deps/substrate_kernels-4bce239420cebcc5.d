/root/repo/target/release/deps/substrate_kernels-4bce239420cebcc5.d: crates/bench/benches/substrate_kernels.rs

/root/repo/target/release/deps/substrate_kernels-4bce239420cebcc5: crates/bench/benches/substrate_kernels.rs

crates/bench/benches/substrate_kernels.rs:
