/root/repo/target/release/deps/ablation_folding-41fea507cb28a131.d: crates/bench/src/bin/ablation_folding.rs

/root/repo/target/release/deps/ablation_folding-41fea507cb28a131: crates/bench/src/bin/ablation_folding.rs

crates/bench/src/bin/ablation_folding.rs:
