/root/repo/target/release/deps/fig04_control_rates-755c672b491d1fa4.d: crates/bench/src/bin/fig04_control_rates.rs

/root/repo/target/release/deps/fig04_control_rates-755c672b491d1fa4: crates/bench/src/bin/fig04_control_rates.rs

crates/bench/src/bin/fig04_control_rates.rs:
