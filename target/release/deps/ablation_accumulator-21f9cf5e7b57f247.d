/root/repo/target/release/deps/ablation_accumulator-21f9cf5e7b57f247.d: crates/bench/src/bin/ablation_accumulator.rs

/root/repo/target/release/deps/ablation_accumulator-21f9cf5e7b57f247: crates/bench/src/bin/ablation_accumulator.rs

crates/bench/src/bin/ablation_accumulator.rs:
