/root/repo/target/release/deps/batch_gradient_throughput-02897c69b30e5665.d: crates/bench/benches/batch_gradient_throughput.rs

/root/repo/target/release/deps/batch_gradient_throughput-02897c69b30e5665: crates/bench/benches/batch_gradient_throughput.rs

crates/bench/benches/batch_gradient_throughput.rs:
