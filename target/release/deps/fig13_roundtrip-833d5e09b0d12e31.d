/root/repo/target/release/deps/fig13_roundtrip-833d5e09b0d12e31.d: crates/bench/src/bin/fig13_roundtrip.rs

/root/repo/target/release/deps/fig13_roundtrip-833d5e09b0d12e31: crates/bench/src/bin/fig13_roundtrip.rs

crates/bench/src/bin/fig13_roundtrip.rs:
