/root/repo/target/release/deps/ablation_folding-3726768e600bbaa6.d: crates/bench/src/bin/ablation_folding.rs

/root/repo/target/release/deps/ablation_folding-3726768e600bbaa6: crates/bench/src/bin/ablation_folding.rs

crates/bench/src/bin/ablation_folding.rs:
