/root/repo/target/release/deps/fig04_control_rates-bf03c6dd3a02bc90.d: crates/bench/src/bin/fig04_control_rates.rs

/root/repo/target/release/deps/fig04_control_rates-bf03c6dd3a02bc90: crates/bench/src/bin/fig04_control_rates.rs

crates/bench/src/bin/fig04_control_rates.rs:
