/root/repo/target/release/deps/fig12_numeric_types-9f52672e9c4ab580.d: crates/bench/benches/fig12_numeric_types.rs

/root/repo/target/release/deps/fig12_numeric_types-9f52672e9c4ab580: crates/bench/benches/fig12_numeric_types.rs

crates/bench/benches/fig12_numeric_types.rs:
