/root/repo/target/release/deps/fig15_projected_rates-bdaa4df215858e26.d: crates/bench/src/bin/fig15_projected_rates.rs

/root/repo/target/release/deps/fig15_projected_rates-bdaa4df215858e26: crates/bench/src/bin/fig15_projected_rates.rs

crates/bench/src/bin/fig15_projected_rates.rs:
