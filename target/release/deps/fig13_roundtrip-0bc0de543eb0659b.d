/root/repo/target/release/deps/fig13_roundtrip-0bc0de543eb0659b.d: crates/bench/src/bin/fig13_roundtrip.rs

/root/repo/target/release/deps/fig13_roundtrip-0bc0de543eb0659b: crates/bench/src/bin/fig13_roundtrip.rs

crates/bench/src/bin/fig13_roundtrip.rs:
