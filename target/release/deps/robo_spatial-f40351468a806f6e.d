/root/repo/target/release/deps/robo_spatial-f40351468a806f6e.d: crates/spatial/src/lib.rs crates/spatial/src/inertia.rs crates/spatial/src/mat3.rs crates/spatial/src/mat6.rs crates/spatial/src/matn.rs crates/spatial/src/motion.rs crates/spatial/src/scalar.rs crates/spatial/src/transform.rs crates/spatial/src/vec3.rs

/root/repo/target/release/deps/robo_spatial-f40351468a806f6e: crates/spatial/src/lib.rs crates/spatial/src/inertia.rs crates/spatial/src/mat3.rs crates/spatial/src/mat6.rs crates/spatial/src/matn.rs crates/spatial/src/motion.rs crates/spatial/src/scalar.rs crates/spatial/src/transform.rs crates/spatial/src/vec3.rs

crates/spatial/src/lib.rs:
crates/spatial/src/inertia.rs:
crates/spatial/src/mat3.rs:
crates/spatial/src/mat6.rs:
crates/spatial/src/matn.rs:
crates/spatial/src/motion.rs:
crates/spatial/src/scalar.rs:
crates/spatial/src/transform.rs:
crates/spatial/src/vec3.rs:
