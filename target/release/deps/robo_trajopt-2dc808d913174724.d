/root/repo/target/release/deps/robo_trajopt-2dc808d913174724.d: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

/root/repo/target/release/deps/robo_trajopt-2dc808d913174724: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

crates/trajopt/src/lib.rs:
crates/trajopt/src/ilqr.rs:
crates/trajopt/src/mpc.rs:
crates/trajopt/src/rate.rs:
