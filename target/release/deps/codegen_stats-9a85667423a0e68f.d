/root/repo/target/release/deps/codegen_stats-9a85667423a0e68f.d: crates/bench/src/bin/codegen_stats.rs

/root/repo/target/release/deps/codegen_stats-9a85667423a0e68f: crates/bench/src/bin/codegen_stats.rs

crates/bench/src/bin/codegen_stats.rs:
