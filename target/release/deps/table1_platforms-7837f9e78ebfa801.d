/root/repo/target/release/deps/table1_platforms-7837f9e78ebfa801.d: crates/bench/src/bin/table1_platforms.rs

/root/repo/target/release/deps/table1_platforms-7837f9e78ebfa801: crates/bench/src/bin/table1_platforms.rs

crates/bench/src/bin/table1_platforms.rs:
