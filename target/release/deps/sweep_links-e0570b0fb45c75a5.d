/root/repo/target/release/deps/sweep_links-e0570b0fb45c75a5.d: crates/bench/src/bin/sweep_links.rs

/root/repo/target/release/deps/sweep_links-e0570b0fb45c75a5: crates/bench/src/bin/sweep_links.rs

crates/bench/src/bin/sweep_links.rs:
