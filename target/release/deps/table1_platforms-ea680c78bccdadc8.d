/root/repo/target/release/deps/table1_platforms-ea680c78bccdadc8.d: crates/bench/src/bin/table1_platforms.rs

/root/repo/target/release/deps/table1_platforms-ea680c78bccdadc8: crates/bench/src/bin/table1_platforms.rs

crates/bench/src/bin/table1_platforms.rs:
