/root/repo/target/release/deps/fig04_control_rates-51c5fefc09b514ad.d: crates/bench/src/bin/fig04_control_rates.rs

/root/repo/target/release/deps/fig04_control_rates-51c5fefc09b514ad: crates/bench/src/bin/fig04_control_rates.rs

crates/bench/src/bin/fig04_control_rates.rs:
