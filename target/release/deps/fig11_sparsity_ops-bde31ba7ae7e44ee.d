/root/repo/target/release/deps/fig11_sparsity_ops-bde31ba7ae7e44ee.d: crates/bench/src/bin/fig11_sparsity_ops.rs

/root/repo/target/release/deps/fig11_sparsity_ops-bde31ba7ae7e44ee: crates/bench/src/bin/fig11_sparsity_ops.rs

crates/bench/src/bin/fig11_sparsity_ops.rs:
