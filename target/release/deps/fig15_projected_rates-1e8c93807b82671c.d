/root/repo/target/release/deps/fig15_projected_rates-1e8c93807b82671c.d: crates/bench/src/bin/fig15_projected_rates.rs

/root/repo/target/release/deps/fig15_projected_rates-1e8c93807b82671c: crates/bench/src/bin/fig15_projected_rates.rs

crates/bench/src/bin/fig15_projected_rates.rs:
