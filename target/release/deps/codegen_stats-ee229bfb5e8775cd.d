/root/repo/target/release/deps/codegen_stats-ee229bfb5e8775cd.d: crates/bench/src/bin/codegen_stats.rs

/root/repo/target/release/deps/codegen_stats-ee229bfb5e8775cd: crates/bench/src/bin/codegen_stats.rs

crates/bench/src/bin/codegen_stats.rs:
