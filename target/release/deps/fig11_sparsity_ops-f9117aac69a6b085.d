/root/repo/target/release/deps/fig11_sparsity_ops-f9117aac69a6b085.d: crates/bench/src/bin/fig11_sparsity_ops.rs

/root/repo/target/release/deps/fig11_sparsity_ops-f9117aac69a6b085: crates/bench/src/bin/fig11_sparsity_ops.rs

crates/bench/src/bin/fig11_sparsity_ops.rs:
