/root/repo/target/release/deps/fig12_precision-0580b2008f5e385a.d: crates/bench/src/bin/fig12_precision.rs

/root/repo/target/release/deps/fig12_precision-0580b2008f5e385a: crates/bench/src/bin/fig12_precision.rs

crates/bench/src/bin/fig12_precision.rs:
