/root/repo/target/release/deps/sec8_workload-d8e322cd4b70f812.d: crates/bench/src/bin/sec8_workload.rs

/root/repo/target/release/deps/sec8_workload-d8e322cd4b70f812: crates/bench/src/bin/sec8_workload.rs

crates/bench/src/bin/sec8_workload.rs:
