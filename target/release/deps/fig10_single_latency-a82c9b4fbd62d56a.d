/root/repo/target/release/deps/fig10_single_latency-a82c9b4fbd62d56a.d: crates/bench/src/bin/fig10_single_latency.rs

/root/repo/target/release/deps/fig10_single_latency-a82c9b4fbd62d56a: crates/bench/src/bin/fig10_single_latency.rs

crates/bench/src/bin/fig10_single_latency.rs:
