/root/repo/target/release/deps/fig15_projected_rates-7e1ac3e5829d868c.d: crates/bench/src/bin/fig15_projected_rates.rs

/root/repo/target/release/deps/fig15_projected_rates-7e1ac3e5829d868c: crates/bench/src/bin/fig15_projected_rates.rs

crates/bench/src/bin/fig15_projected_rates.rs:
