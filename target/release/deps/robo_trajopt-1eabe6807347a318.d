/root/repo/target/release/deps/robo_trajopt-1eabe6807347a318.d: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

/root/repo/target/release/deps/librobo_trajopt-1eabe6807347a318.rlib: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

/root/repo/target/release/deps/librobo_trajopt-1eabe6807347a318.rmeta: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

crates/trajopt/src/lib.rs:
crates/trajopt/src/ilqr.rs:
crates/trajopt/src/mpc.rs:
crates/trajopt/src/rate.rs:
