/root/repo/target/release/deps/sec7_other_robots-fd8b7466f782b109.d: crates/bench/src/bin/sec7_other_robots.rs

/root/repo/target/release/deps/sec7_other_robots-fd8b7466f782b109: crates/bench/src/bin/sec7_other_robots.rs

crates/bench/src/bin/sec7_other_robots.rs:
