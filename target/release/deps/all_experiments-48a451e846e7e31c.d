/root/repo/target/release/deps/all_experiments-48a451e846e7e31c.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-48a451e846e7e31c: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
