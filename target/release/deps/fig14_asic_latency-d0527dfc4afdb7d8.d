/root/repo/target/release/deps/fig14_asic_latency-d0527dfc4afdb7d8.d: crates/bench/src/bin/fig14_asic_latency.rs

/root/repo/target/release/deps/fig14_asic_latency-d0527dfc4afdb7d8: crates/bench/src/bin/fig14_asic_latency.rs

crates/bench/src/bin/fig14_asic_latency.rs:
