/root/repo/target/release/deps/sec64_soc-442e600b9b3aab69.d: crates/bench/src/bin/sec64_soc.rs

/root/repo/target/release/deps/sec64_soc-442e600b9b3aab69: crates/bench/src/bin/sec64_soc.rs

crates/bench/src/bin/sec64_soc.rs:
