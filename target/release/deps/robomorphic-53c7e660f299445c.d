/root/repo/target/release/deps/robomorphic-53c7e660f299445c.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/librobomorphic-53c7e660f299445c.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/librobomorphic-53c7e660f299445c.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
