/root/repo/target/release/deps/sec8_workload-2deb8065e7409d81.d: crates/bench/src/bin/sec8_workload.rs

/root/repo/target/release/deps/sec8_workload-2deb8065e7409d81: crates/bench/src/bin/sec8_workload.rs

crates/bench/src/bin/sec8_workload.rs:
