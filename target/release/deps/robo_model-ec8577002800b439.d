/root/repo/target/release/deps/robo_model-ec8577002800b439.d: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

/root/repo/target/release/deps/librobo_model-ec8577002800b439.rlib: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

/root/repo/target/release/deps/librobo_model-ec8577002800b439.rmeta: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

crates/model/src/lib.rs:
crates/model/src/joint.rs:
crates/model/src/parse.rs:
crates/model/src/robot.rs:
crates/model/src/robots.rs:
crates/model/src/urdf.rs:
