/root/repo/target/release/deps/table2_asic-40008601c2184b99.d: crates/bench/src/bin/table2_asic.rs

/root/repo/target/release/deps/table2_asic-40008601c2184b99: crates/bench/src/bin/table2_asic.rs

crates/bench/src/bin/table2_asic.rs:
