/root/repo/target/release/deps/robo_baselines-4005dfffce43359c.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

/root/repo/target/release/deps/robo_baselines-4005dfffce43359c: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/pool.rs:
