/root/repo/target/release/deps/table2_asic-20113131bc36529d.d: crates/bench/src/bin/table2_asic.rs

/root/repo/target/release/deps/table2_asic-20113131bc36529d: crates/bench/src/bin/table2_asic.rs

crates/bench/src/bin/table2_asic.rs:
