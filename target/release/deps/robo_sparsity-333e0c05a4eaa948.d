/root/repo/target/release/deps/robo_sparsity-333e0c05a4eaa948.d: crates/sparsity/src/lib.rs

/root/repo/target/release/deps/librobo_sparsity-333e0c05a4eaa948.rlib: crates/sparsity/src/lib.rs

/root/repo/target/release/deps/librobo_sparsity-333e0c05a4eaa948.rmeta: crates/sparsity/src/lib.rs

crates/sparsity/src/lib.rs:
