/root/repo/target/release/deps/robomorphic-ac2751c58fce83c9.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/robomorphic-ac2751c58fce83c9: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
