/root/repo/target/release/deps/robomorphic_core-9a7b778ab9e03e08.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

/root/repo/target/release/deps/robomorphic_core-9a7b778ab9e03e08: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/kinematics.rs:
crates/core/src/platform.rs:
crates/core/src/template.rs:
crates/core/src/units.rs:
