/root/repo/target/release/deps/all_experiments-ea40406532add3ea.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-ea40406532add3ea: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
