/root/repo/target/release/deps/robo_profile-f6736d1f76a42d11.d: crates/profile/src/lib.rs

/root/repo/target/release/deps/librobo_profile-f6736d1f76a42d11.rlib: crates/profile/src/lib.rs

/root/repo/target/release/deps/librobo_profile-f6736d1f76a42d11.rmeta: crates/profile/src/lib.rs

crates/profile/src/lib.rs:
