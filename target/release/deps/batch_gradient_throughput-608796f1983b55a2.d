/root/repo/target/release/deps/batch_gradient_throughput-608796f1983b55a2.d: crates/bench/benches/batch_gradient_throughput.rs

/root/repo/target/release/deps/batch_gradient_throughput-608796f1983b55a2: crates/bench/benches/batch_gradient_throughput.rs

crates/bench/benches/batch_gradient_throughput.rs:
