/root/repo/target/release/deps/table1_platforms-f72708ce74e610bd.d: crates/bench/src/bin/table1_platforms.rs

/root/repo/target/release/deps/table1_platforms-f72708ce74e610bd: crates/bench/src/bin/table1_platforms.rs

crates/bench/src/bin/table1_platforms.rs:
