/root/repo/target/release/deps/sec7_other_kernels-54a4cceb940f446a.d: crates/bench/src/bin/sec7_other_kernels.rs

/root/repo/target/release/deps/sec7_other_kernels-54a4cceb940f446a: crates/bench/src/bin/sec7_other_kernels.rs

crates/bench/src/bin/sec7_other_kernels.rs:
