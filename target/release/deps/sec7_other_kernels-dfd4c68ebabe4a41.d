/root/repo/target/release/deps/sec7_other_kernels-dfd4c68ebabe4a41.d: crates/bench/src/bin/sec7_other_kernels.rs

/root/repo/target/release/deps/sec7_other_kernels-dfd4c68ebabe4a41: crates/bench/src/bin/sec7_other_kernels.rs

crates/bench/src/bin/sec7_other_kernels.rs:
