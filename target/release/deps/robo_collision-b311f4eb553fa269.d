/root/repo/target/release/deps/robo_collision-b311f4eb553fa269.d: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

/root/repo/target/release/deps/librobo_collision-b311f4eb553fa269.rlib: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

/root/repo/target/release/deps/librobo_collision-b311f4eb553fa269.rmeta: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

crates/collision/src/lib.rs:
crates/collision/src/checker.rs:
crates/collision/src/geometry.rs:
crates/collision/src/template.rs:
