/root/repo/target/release/deps/robo_sim-78d2398528cbade0.d: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/release/deps/robo_sim-78d2398528cbade0: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

crates/sim/src/lib.rs:
crates/sim/src/accel_sim.rs:
crates/sim/src/coproc.rs:
crates/sim/src/stepper.rs:
crates/sim/src/xunit.rs:
