/root/repo/target/release/deps/sec7_other_robots-180736776ba7222c.d: crates/bench/src/bin/sec7_other_robots.rs

/root/repo/target/release/deps/sec7_other_robots-180736776ba7222c: crates/bench/src/bin/sec7_other_robots.rs

crates/bench/src/bin/sec7_other_robots.rs:
