/root/repo/target/release/deps/fig10_single_latency-c4cb310ee3dd1055.d: crates/bench/src/bin/fig10_single_latency.rs

/root/repo/target/release/deps/fig10_single_latency-c4cb310ee3dd1055: crates/bench/src/bin/fig10_single_latency.rs

crates/bench/src/bin/fig10_single_latency.rs:
