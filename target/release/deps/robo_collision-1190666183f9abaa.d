/root/repo/target/release/deps/robo_collision-1190666183f9abaa.d: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

/root/repo/target/release/deps/robo_collision-1190666183f9abaa: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

crates/collision/src/lib.rs:
crates/collision/src/checker.rs:
crates/collision/src/geometry.rs:
crates/collision/src/template.rs:
