/root/repo/target/release/deps/fig14_asic_latency-c8a00a8807e84055.d: crates/bench/src/bin/fig14_asic_latency.rs

/root/repo/target/release/deps/fig14_asic_latency-c8a00a8807e84055: crates/bench/src/bin/fig14_asic_latency.rs

crates/bench/src/bin/fig14_asic_latency.rs:
