/root/repo/target/debug/deps/ablation_accumulator-1deb7961ff89f4d5.d: crates/bench/src/bin/ablation_accumulator.rs Cargo.toml

/root/repo/target/debug/deps/libablation_accumulator-1deb7961ff89f4d5.rmeta: crates/bench/src/bin/ablation_accumulator.rs Cargo.toml

crates/bench/src/bin/ablation_accumulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
