/root/repo/target/debug/deps/robomorphic-6c5542851e63a8f8.d: src/bin/robomorphic.rs Cargo.toml

/root/repo/target/debug/deps/librobomorphic-6c5542851e63a8f8.rmeta: src/bin/robomorphic.rs Cargo.toml

src/bin/robomorphic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
