/root/repo/target/debug/deps/robomorphic-f259202a5b834fbc.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/librobomorphic-f259202a5b834fbc.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/librobomorphic-f259202a5b834fbc.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
