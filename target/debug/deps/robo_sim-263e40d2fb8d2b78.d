/root/repo/target/debug/deps/robo_sim-263e40d2fb8d2b78.d: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/debug/deps/librobo_sim-263e40d2fb8d2b78.rlib: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/debug/deps/librobo_sim-263e40d2fb8d2b78.rmeta: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

crates/sim/src/lib.rs:
crates/sim/src/accel_sim.rs:
crates/sim/src/coproc.rs:
crates/sim/src/stepper.rs:
crates/sim/src/xunit.rs:
