/root/repo/target/debug/deps/robo_profile-952133bab0c1ac2d.d: crates/profile/src/lib.rs

/root/repo/target/debug/deps/robo_profile-952133bab0c1ac2d: crates/profile/src/lib.rs

crates/profile/src/lib.rs:
