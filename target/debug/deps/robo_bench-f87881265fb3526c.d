/root/repo/target/debug/deps/robo_bench-f87881265fb3526c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/librobo_bench-f87881265fb3526c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
