/root/repo/target/debug/deps/alloc_free-bf06391a9b72aa75.d: tests/alloc_free.rs

/root/repo/target/debug/deps/alloc_free-bf06391a9b72aa75: tests/alloc_free.rs

tests/alloc_free.rs:
