/root/repo/target/debug/deps/robo_trajopt-e0a5719799489a59.d: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs Cargo.toml

/root/repo/target/debug/deps/librobo_trajopt-e0a5719799489a59.rmeta: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs Cargo.toml

crates/trajopt/src/lib.rs:
crates/trajopt/src/ilqr.rs:
crates/trajopt/src/mpc.rs:
crates/trajopt/src/rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
