/root/repo/target/debug/deps/cli-d89d0831f8cb8b8b.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-d89d0831f8cb8b8b.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
