/root/repo/target/debug/deps/codegen_stats-ff2e6ad8cade426c.d: crates/bench/src/bin/codegen_stats.rs

/root/repo/target/debug/deps/codegen_stats-ff2e6ad8cade426c: crates/bench/src/bin/codegen_stats.rs

crates/bench/src/bin/codegen_stats.rs:
