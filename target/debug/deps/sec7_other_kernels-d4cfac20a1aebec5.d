/root/repo/target/debug/deps/sec7_other_kernels-d4cfac20a1aebec5.d: crates/bench/src/bin/sec7_other_kernels.rs

/root/repo/target/debug/deps/sec7_other_kernels-d4cfac20a1aebec5: crates/bench/src/bin/sec7_other_kernels.rs

crates/bench/src/bin/sec7_other_kernels.rs:
