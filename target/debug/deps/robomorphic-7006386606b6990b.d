/root/repo/target/debug/deps/robomorphic-7006386606b6990b.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/librobomorphic-7006386606b6990b.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
