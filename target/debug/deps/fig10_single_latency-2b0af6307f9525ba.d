/root/repo/target/debug/deps/fig10_single_latency-2b0af6307f9525ba.d: crates/bench/src/bin/fig10_single_latency.rs

/root/repo/target/debug/deps/fig10_single_latency-2b0af6307f9525ba: crates/bench/src/bin/fig10_single_latency.rs

crates/bench/src/bin/fig10_single_latency.rs:
