/root/repo/target/debug/deps/sec64_soc-4bd5c12d3f88cf23.d: crates/bench/src/bin/sec64_soc.rs Cargo.toml

/root/repo/target/debug/deps/libsec64_soc-4bd5c12d3f88cf23.rmeta: crates/bench/src/bin/sec64_soc.rs Cargo.toml

crates/bench/src/bin/sec64_soc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
