/root/repo/target/debug/deps/sec64_soc-8dafbdc722ed2441.d: crates/bench/src/bin/sec64_soc.rs

/root/repo/target/debug/deps/sec64_soc-8dafbdc722ed2441: crates/bench/src/bin/sec64_soc.rs

crates/bench/src/bin/sec64_soc.rs:
