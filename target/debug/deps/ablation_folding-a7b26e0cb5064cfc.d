/root/repo/target/debug/deps/ablation_folding-a7b26e0cb5064cfc.d: crates/bench/src/bin/ablation_folding.rs

/root/repo/target/debug/deps/ablation_folding-a7b26e0cb5064cfc: crates/bench/src/bin/ablation_folding.rs

crates/bench/src/bin/ablation_folding.rs:
