/root/repo/target/debug/deps/robomorphic-46e30a55da696647.d: src/bin/robomorphic.rs

/root/repo/target/debug/deps/robomorphic-46e30a55da696647: src/bin/robomorphic.rs

src/bin/robomorphic.rs:
