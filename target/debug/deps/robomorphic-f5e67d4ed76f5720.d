/root/repo/target/debug/deps/robomorphic-f5e67d4ed76f5720.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/librobomorphic-f5e67d4ed76f5720.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
