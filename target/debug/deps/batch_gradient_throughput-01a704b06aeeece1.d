/root/repo/target/debug/deps/batch_gradient_throughput-01a704b06aeeece1.d: crates/bench/benches/batch_gradient_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_gradient_throughput-01a704b06aeeece1.rmeta: crates/bench/benches/batch_gradient_throughput.rs Cargo.toml

crates/bench/benches/batch_gradient_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
