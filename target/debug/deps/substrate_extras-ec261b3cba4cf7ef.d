/root/repo/target/debug/deps/substrate_extras-ec261b3cba4cf7ef.d: crates/bench/benches/substrate_extras.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_extras-ec261b3cba4cf7ef.rmeta: crates/bench/benches/substrate_extras.rs Cargo.toml

crates/bench/benches/substrate_extras.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
