/root/repo/target/debug/deps/robomorphic-b1010ca5aef9d0e5.d: src/bin/robomorphic.rs

/root/repo/target/debug/deps/robomorphic-b1010ca5aef9d0e5: src/bin/robomorphic.rs

src/bin/robomorphic.rs:
