/root/repo/target/debug/deps/all_experiments-55bb883b6e59c41d.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-55bb883b6e59c41d: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
