/root/repo/target/debug/deps/precision-697426dbdf81d4b7.d: tests/precision.rs

/root/repo/target/debug/deps/precision-697426dbdf81d4b7: tests/precision.rs

tests/precision.rs:
