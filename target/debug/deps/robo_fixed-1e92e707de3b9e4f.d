/root/repo/target/debug/deps/robo_fixed-1e92e707de3b9e4f.d: crates/fixed/src/lib.rs

/root/repo/target/debug/deps/librobo_fixed-1e92e707de3b9e4f.rlib: crates/fixed/src/lib.rs

/root/repo/target/debug/deps/librobo_fixed-1e92e707de3b9e4f.rmeta: crates/fixed/src/lib.rs

crates/fixed/src/lib.rs:
