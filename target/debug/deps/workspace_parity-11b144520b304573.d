/root/repo/target/debug/deps/workspace_parity-11b144520b304573.d: tests/workspace_parity.rs

/root/repo/target/debug/deps/workspace_parity-11b144520b304573: tests/workspace_parity.rs

tests/workspace_parity.rs:
