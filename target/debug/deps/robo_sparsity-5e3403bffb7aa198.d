/root/repo/target/debug/deps/robo_sparsity-5e3403bffb7aa198.d: crates/sparsity/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librobo_sparsity-5e3403bffb7aa198.rmeta: crates/sparsity/src/lib.rs Cargo.toml

crates/sparsity/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
