/root/repo/target/debug/deps/cli-376de98469a780bf.d: tests/cli.rs

/root/repo/target/debug/deps/cli-376de98469a780bf: tests/cli.rs

tests/cli.rs:
