/root/repo/target/debug/deps/fig04_control_rates-7cc2c5ee3dcf7eb8.d: crates/bench/src/bin/fig04_control_rates.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_control_rates-7cc2c5ee3dcf7eb8.rmeta: crates/bench/src/bin/fig04_control_rates.rs Cargo.toml

crates/bench/src/bin/fig04_control_rates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
