/root/repo/target/debug/deps/fig15_projected_rates-6b9c84bc34f8e2be.d: crates/bench/src/bin/fig15_projected_rates.rs

/root/repo/target/debug/deps/fig15_projected_rates-6b9c84bc34f8e2be: crates/bench/src/bin/fig15_projected_rates.rs

crates/bench/src/bin/fig15_projected_rates.rs:
