/root/repo/target/debug/deps/robo_fixed-5d107fd98d3da5c2.d: crates/fixed/src/lib.rs

/root/repo/target/debug/deps/robo_fixed-5d107fd98d3da5c2: crates/fixed/src/lib.rs

crates/fixed/src/lib.rs:
