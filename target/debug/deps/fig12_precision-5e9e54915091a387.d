/root/repo/target/debug/deps/fig12_precision-5e9e54915091a387.d: crates/bench/src/bin/fig12_precision.rs

/root/repo/target/debug/deps/fig12_precision-5e9e54915091a387: crates/bench/src/bin/fig12_precision.rs

crates/bench/src/bin/fig12_precision.rs:
