/root/repo/target/debug/deps/fig14_asic_latency-1ad1a9cf56aa9a87.d: crates/bench/src/bin/fig14_asic_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_asic_latency-1ad1a9cf56aa9a87.rmeta: crates/bench/src/bin/fig14_asic_latency.rs Cargo.toml

crates/bench/src/bin/fig14_asic_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
