/root/repo/target/debug/deps/coprocessor-5a19602f109879bb.d: tests/coprocessor.rs Cargo.toml

/root/repo/target/debug/deps/libcoprocessor-5a19602f109879bb.rmeta: tests/coprocessor.rs Cargo.toml

tests/coprocessor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
