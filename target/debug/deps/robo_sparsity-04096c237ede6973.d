/root/repo/target/debug/deps/robo_sparsity-04096c237ede6973.d: crates/sparsity/src/lib.rs

/root/repo/target/debug/deps/robo_sparsity-04096c237ede6973: crates/sparsity/src/lib.rs

crates/sparsity/src/lib.rs:
