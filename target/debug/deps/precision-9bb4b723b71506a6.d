/root/repo/target/debug/deps/precision-9bb4b723b71506a6.d: tests/precision.rs

/root/repo/target/debug/deps/precision-9bb4b723b71506a6: tests/precision.rs

tests/precision.rs:
