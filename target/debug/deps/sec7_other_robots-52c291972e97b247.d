/root/repo/target/debug/deps/sec7_other_robots-52c291972e97b247.d: crates/bench/src/bin/sec7_other_robots.rs

/root/repo/target/debug/deps/sec7_other_robots-52c291972e97b247: crates/bench/src/bin/sec7_other_robots.rs

crates/bench/src/bin/sec7_other_robots.rs:
