/root/repo/target/debug/deps/robo_collision-c341c6a76f1c9658.d: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

/root/repo/target/debug/deps/librobo_collision-c341c6a76f1c9658.rlib: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

/root/repo/target/debug/deps/librobo_collision-c341c6a76f1c9658.rmeta: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

crates/collision/src/lib.rs:
crates/collision/src/checker.rs:
crates/collision/src/geometry.rs:
crates/collision/src/template.rs:
