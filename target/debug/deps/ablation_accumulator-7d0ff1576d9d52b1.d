/root/repo/target/debug/deps/ablation_accumulator-7d0ff1576d9d52b1.d: crates/bench/src/bin/ablation_accumulator.rs

/root/repo/target/debug/deps/ablation_accumulator-7d0ff1576d9d52b1: crates/bench/src/bin/ablation_accumulator.rs

crates/bench/src/bin/ablation_accumulator.rs:
