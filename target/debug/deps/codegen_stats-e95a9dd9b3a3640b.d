/root/repo/target/debug/deps/codegen_stats-e95a9dd9b3a3640b.d: crates/bench/src/bin/codegen_stats.rs

/root/repo/target/debug/deps/codegen_stats-e95a9dd9b3a3640b: crates/bench/src/bin/codegen_stats.rs

crates/bench/src/bin/codegen_stats.rs:
