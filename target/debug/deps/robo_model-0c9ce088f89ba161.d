/root/repo/target/debug/deps/robo_model-0c9ce088f89ba161.d: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

/root/repo/target/debug/deps/robo_model-0c9ce088f89ba161: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

crates/model/src/lib.rs:
crates/model/src/joint.rs:
crates/model/src/parse.rs:
crates/model/src/robot.rs:
crates/model/src/robots.rs:
crates/model/src/urdf.rs:
