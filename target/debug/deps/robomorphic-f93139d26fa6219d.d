/root/repo/target/debug/deps/robomorphic-f93139d26fa6219d.d: src/bin/robomorphic.rs

/root/repo/target/debug/deps/robomorphic-f93139d26fa6219d: src/bin/robomorphic.rs

src/bin/robomorphic.rs:
