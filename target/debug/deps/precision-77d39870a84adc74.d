/root/repo/target/debug/deps/precision-77d39870a84adc74.d: tests/precision.rs Cargo.toml

/root/repo/target/debug/deps/libprecision-77d39870a84adc74.rmeta: tests/precision.rs Cargo.toml

tests/precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
