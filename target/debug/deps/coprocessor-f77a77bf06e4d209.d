/root/repo/target/debug/deps/coprocessor-f77a77bf06e4d209.d: tests/coprocessor.rs

/root/repo/target/debug/deps/coprocessor-f77a77bf06e4d209: tests/coprocessor.rs

tests/coprocessor.rs:
