/root/repo/target/debug/deps/fig13_roundtrip-23f30b5c3664404e.d: crates/bench/src/bin/fig13_roundtrip.rs

/root/repo/target/debug/deps/fig13_roundtrip-23f30b5c3664404e: crates/bench/src/bin/fig13_roundtrip.rs

crates/bench/src/bin/fig13_roundtrip.rs:
