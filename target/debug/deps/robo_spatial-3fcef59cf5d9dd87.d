/root/repo/target/debug/deps/robo_spatial-3fcef59cf5d9dd87.d: crates/spatial/src/lib.rs crates/spatial/src/inertia.rs crates/spatial/src/mat3.rs crates/spatial/src/mat6.rs crates/spatial/src/matn.rs crates/spatial/src/motion.rs crates/spatial/src/scalar.rs crates/spatial/src/transform.rs crates/spatial/src/vec3.rs

/root/repo/target/debug/deps/librobo_spatial-3fcef59cf5d9dd87.rlib: crates/spatial/src/lib.rs crates/spatial/src/inertia.rs crates/spatial/src/mat3.rs crates/spatial/src/mat6.rs crates/spatial/src/matn.rs crates/spatial/src/motion.rs crates/spatial/src/scalar.rs crates/spatial/src/transform.rs crates/spatial/src/vec3.rs

/root/repo/target/debug/deps/librobo_spatial-3fcef59cf5d9dd87.rmeta: crates/spatial/src/lib.rs crates/spatial/src/inertia.rs crates/spatial/src/mat3.rs crates/spatial/src/mat6.rs crates/spatial/src/matn.rs crates/spatial/src/motion.rs crates/spatial/src/scalar.rs crates/spatial/src/transform.rs crates/spatial/src/vec3.rs

crates/spatial/src/lib.rs:
crates/spatial/src/inertia.rs:
crates/spatial/src/mat3.rs:
crates/spatial/src/mat6.rs:
crates/spatial/src/matn.rs:
crates/spatial/src/motion.rs:
crates/spatial/src/scalar.rs:
crates/spatial/src/transform.rs:
crates/spatial/src/vec3.rs:
