/root/repo/target/debug/deps/robo_codegen-970afaf02c48a723.d: crates/codegen/src/lib.rs crates/codegen/src/compiled.rs crates/codegen/src/netlist.rs crates/codegen/src/opt.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs Cargo.toml

/root/repo/target/debug/deps/librobo_codegen-970afaf02c48a723.rmeta: crates/codegen/src/lib.rs crates/codegen/src/compiled.rs crates/codegen/src/netlist.rs crates/codegen/src/opt.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs Cargo.toml

crates/codegen/src/lib.rs:
crates/codegen/src/compiled.rs:
crates/codegen/src/netlist.rs:
crates/codegen/src/opt.rs:
crates/codegen/src/top.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/xunit_gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
