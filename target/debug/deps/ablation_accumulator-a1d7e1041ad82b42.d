/root/repo/target/debug/deps/ablation_accumulator-a1d7e1041ad82b42.d: crates/bench/src/bin/ablation_accumulator.rs

/root/repo/target/debug/deps/ablation_accumulator-a1d7e1041ad82b42: crates/bench/src/bin/ablation_accumulator.rs

crates/bench/src/bin/ablation_accumulator.rs:
