/root/repo/target/debug/deps/fig14_asic_latency-29b6827fc29a350b.d: crates/bench/src/bin/fig14_asic_latency.rs

/root/repo/target/debug/deps/fig14_asic_latency-29b6827fc29a350b: crates/bench/src/bin/fig14_asic_latency.rs

crates/bench/src/bin/fig14_asic_latency.rs:
