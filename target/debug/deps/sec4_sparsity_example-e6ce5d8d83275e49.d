/root/repo/target/debug/deps/sec4_sparsity_example-e6ce5d8d83275e49.d: crates/bench/src/bin/sec4_sparsity_example.rs

/root/repo/target/debug/deps/sec4_sparsity_example-e6ce5d8d83275e49: crates/bench/src/bin/sec4_sparsity_example.rs

crates/bench/src/bin/sec4_sparsity_example.rs:
