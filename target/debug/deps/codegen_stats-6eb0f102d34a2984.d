/root/repo/target/debug/deps/codegen_stats-6eb0f102d34a2984.d: crates/bench/src/bin/codegen_stats.rs Cargo.toml

/root/repo/target/debug/deps/libcodegen_stats-6eb0f102d34a2984.rmeta: crates/bench/src/bin/codegen_stats.rs Cargo.toml

crates/bench/src/bin/codegen_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
