/root/repo/target/debug/deps/sec4_sparsity_example-db303064a48d2549.d: crates/bench/src/bin/sec4_sparsity_example.rs

/root/repo/target/debug/deps/sec4_sparsity_example-db303064a48d2549: crates/bench/src/bin/sec4_sparsity_example.rs

crates/bench/src/bin/sec4_sparsity_example.rs:
