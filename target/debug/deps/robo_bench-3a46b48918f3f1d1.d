/root/repo/target/debug/deps/robo_bench-3a46b48918f3f1d1.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/librobo_bench-3a46b48918f3f1d1.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/librobo_bench-3a46b48918f3f1d1.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
