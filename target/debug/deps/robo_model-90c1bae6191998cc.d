/root/repo/target/debug/deps/robo_model-90c1bae6191998cc.d: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

/root/repo/target/debug/deps/librobo_model-90c1bae6191998cc.rlib: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

/root/repo/target/debug/deps/librobo_model-90c1bae6191998cc.rmeta: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs

crates/model/src/lib.rs:
crates/model/src/joint.rs:
crates/model/src/parse.rs:
crates/model/src/robot.rs:
crates/model/src/robots.rs:
crates/model/src/urdf.rs:
