/root/repo/target/debug/deps/robo_collision-8a247dda7f7f91c2.d: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

/root/repo/target/debug/deps/robo_collision-8a247dda7f7f91c2: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs

crates/collision/src/lib.rs:
crates/collision/src/checker.rs:
crates/collision/src/geometry.rs:
crates/collision/src/template.rs:
