/root/repo/target/debug/deps/substrate_kernels-2720d7347ecffd0d.d: crates/bench/benches/substrate_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_kernels-2720d7347ecffd0d.rmeta: crates/bench/benches/substrate_kernels.rs Cargo.toml

crates/bench/benches/substrate_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
