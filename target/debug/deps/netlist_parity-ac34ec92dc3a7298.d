/root/repo/target/debug/deps/netlist_parity-ac34ec92dc3a7298.d: tests/netlist_parity.rs

/root/repo/target/debug/deps/netlist_parity-ac34ec92dc3a7298: tests/netlist_parity.rs

tests/netlist_parity.rs:
