/root/repo/target/debug/deps/end_to_end-e13bb68eb58d348c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e13bb68eb58d348c: tests/end_to_end.rs

tests/end_to_end.rs:
