/root/repo/target/debug/deps/sec7_other_kernels-b8d1d7d226d78439.d: crates/bench/src/bin/sec7_other_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libsec7_other_kernels-b8d1d7d226d78439.rmeta: crates/bench/src/bin/sec7_other_kernels.rs Cargo.toml

crates/bench/src/bin/sec7_other_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
