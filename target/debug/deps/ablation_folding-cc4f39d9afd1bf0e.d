/root/repo/target/debug/deps/ablation_folding-cc4f39d9afd1bf0e.d: crates/bench/src/bin/ablation_folding.rs Cargo.toml

/root/repo/target/debug/deps/libablation_folding-cc4f39d9afd1bf0e.rmeta: crates/bench/src/bin/ablation_folding.rs Cargo.toml

crates/bench/src/bin/ablation_folding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
