/root/repo/target/debug/deps/robomorphic_core-64e4797cbddd93eb.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

/root/repo/target/debug/deps/librobomorphic_core-64e4797cbddd93eb.rlib: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

/root/repo/target/debug/deps/librobomorphic_core-64e4797cbddd93eb.rmeta: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/kinematics.rs:
crates/core/src/platform.rs:
crates/core/src/template.rs:
crates/core/src/units.rs:
