/root/repo/target/debug/deps/robo_baselines-a159a2456c7674af.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

/root/repo/target/debug/deps/robo_baselines-a159a2456c7674af: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/pool.rs:
