/root/repo/target/debug/deps/robo_sim-14657ceaba18f2ab.d: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs Cargo.toml

/root/repo/target/debug/deps/librobo_sim-14657ceaba18f2ab.rmeta: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/accel_sim.rs:
crates/sim/src/coproc.rs:
crates/sim/src/stepper.rs:
crates/sim/src/xunit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
