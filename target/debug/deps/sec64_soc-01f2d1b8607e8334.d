/root/repo/target/debug/deps/sec64_soc-01f2d1b8607e8334.d: crates/bench/src/bin/sec64_soc.rs

/root/repo/target/debug/deps/sec64_soc-01f2d1b8607e8334: crates/bench/src/bin/sec64_soc.rs

crates/bench/src/bin/sec64_soc.rs:
