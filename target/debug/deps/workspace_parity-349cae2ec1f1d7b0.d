/root/repo/target/debug/deps/workspace_parity-349cae2ec1f1d7b0.d: tests/workspace_parity.rs Cargo.toml

/root/repo/target/debug/deps/libworkspace_parity-349cae2ec1f1d7b0.rmeta: tests/workspace_parity.rs Cargo.toml

tests/workspace_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
