/root/repo/target/debug/deps/robo_baselines-cf63ada471a851cd.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/librobo_baselines-cf63ada471a851cd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
