/root/repo/target/debug/deps/floating_base-80e11721d6dd7efa.d: tests/floating_base.rs

/root/repo/target/debug/deps/floating_base-80e11721d6dd7efa: tests/floating_base.rs

tests/floating_base.rs:
