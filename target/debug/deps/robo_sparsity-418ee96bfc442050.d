/root/repo/target/debug/deps/robo_sparsity-418ee96bfc442050.d: crates/sparsity/src/lib.rs

/root/repo/target/debug/deps/librobo_sparsity-418ee96bfc442050.rlib: crates/sparsity/src/lib.rs

/root/repo/target/debug/deps/librobo_sparsity-418ee96bfc442050.rmeta: crates/sparsity/src/lib.rs

crates/sparsity/src/lib.rs:
