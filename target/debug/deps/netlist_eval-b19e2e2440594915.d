/root/repo/target/debug/deps/netlist_eval-b19e2e2440594915.d: crates/bench/benches/netlist_eval.rs Cargo.toml

/root/repo/target/debug/deps/libnetlist_eval-b19e2e2440594915.rmeta: crates/bench/benches/netlist_eval.rs Cargo.toml

crates/bench/benches/netlist_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
