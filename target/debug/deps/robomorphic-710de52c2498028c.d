/root/repo/target/debug/deps/robomorphic-710de52c2498028c.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/librobomorphic-710de52c2498028c.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/librobomorphic-710de52c2498028c.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
