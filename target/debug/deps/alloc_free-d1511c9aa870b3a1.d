/root/repo/target/debug/deps/alloc_free-d1511c9aa870b3a1.d: tests/alloc_free.rs Cargo.toml

/root/repo/target/debug/deps/liballoc_free-d1511c9aa870b3a1.rmeta: tests/alloc_free.rs Cargo.toml

tests/alloc_free.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
