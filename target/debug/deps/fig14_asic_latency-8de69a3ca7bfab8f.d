/root/repo/target/debug/deps/fig14_asic_latency-8de69a3ca7bfab8f.d: crates/bench/src/bin/fig14_asic_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_asic_latency-8de69a3ca7bfab8f.rmeta: crates/bench/src/bin/fig14_asic_latency.rs Cargo.toml

crates/bench/src/bin/fig14_asic_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
