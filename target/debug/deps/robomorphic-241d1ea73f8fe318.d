/root/repo/target/debug/deps/robomorphic-241d1ea73f8fe318.d: src/bin/robomorphic.rs

/root/repo/target/debug/deps/robomorphic-241d1ea73f8fe318: src/bin/robomorphic.rs

src/bin/robomorphic.rs:
