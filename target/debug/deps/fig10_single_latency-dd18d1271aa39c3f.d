/root/repo/target/debug/deps/fig10_single_latency-dd18d1271aa39c3f.d: crates/bench/src/bin/fig10_single_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_single_latency-dd18d1271aa39c3f.rmeta: crates/bench/src/bin/fig10_single_latency.rs Cargo.toml

crates/bench/src/bin/fig10_single_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
