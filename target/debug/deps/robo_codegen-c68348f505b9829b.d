/root/repo/target/debug/deps/robo_codegen-c68348f505b9829b.d: crates/codegen/src/lib.rs crates/codegen/src/netlist.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

/root/repo/target/debug/deps/robo_codegen-c68348f505b9829b: crates/codegen/src/lib.rs crates/codegen/src/netlist.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

crates/codegen/src/lib.rs:
crates/codegen/src/netlist.rs:
crates/codegen/src/top.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/xunit_gen.rs:
