/root/repo/target/debug/deps/end_to_end-5d2c85647c3783cc.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5d2c85647c3783cc: tests/end_to_end.rs

tests/end_to_end.rs:
