/root/repo/target/debug/deps/workspace_parity-008ab1c68d04786f.d: tests/workspace_parity.rs Cargo.toml

/root/repo/target/debug/deps/libworkspace_parity-008ab1c68d04786f.rmeta: tests/workspace_parity.rs Cargo.toml

tests/workspace_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
