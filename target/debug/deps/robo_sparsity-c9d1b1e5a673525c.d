/root/repo/target/debug/deps/robo_sparsity-c9d1b1e5a673525c.d: crates/sparsity/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librobo_sparsity-c9d1b1e5a673525c.rmeta: crates/sparsity/src/lib.rs Cargo.toml

crates/sparsity/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
