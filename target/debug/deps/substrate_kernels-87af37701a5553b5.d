/root/repo/target/debug/deps/substrate_kernels-87af37701a5553b5.d: crates/bench/benches/substrate_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_kernels-87af37701a5553b5.rmeta: crates/bench/benches/substrate_kernels.rs Cargo.toml

crates/bench/benches/substrate_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
