/root/repo/target/debug/deps/precision-4b9d4f648bce5b43.d: tests/precision.rs Cargo.toml

/root/repo/target/debug/deps/libprecision-4b9d4f648bce5b43.rmeta: tests/precision.rs Cargo.toml

tests/precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
