/root/repo/target/debug/deps/table2_asic-70e8987dc51233e8.d: crates/bench/src/bin/table2_asic.rs

/root/repo/target/debug/deps/table2_asic-70e8987dc51233e8: crates/bench/src/bin/table2_asic.rs

crates/bench/src/bin/table2_asic.rs:
