/root/repo/target/debug/deps/cli-8ce5c02ccffc2590.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-8ce5c02ccffc2590.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
