/root/repo/target/debug/deps/fig15_projected_rates-1a14421107b8ce22.d: crates/bench/src/bin/fig15_projected_rates.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_projected_rates-1a14421107b8ce22.rmeta: crates/bench/src/bin/fig15_projected_rates.rs Cargo.toml

crates/bench/src/bin/fig15_projected_rates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
