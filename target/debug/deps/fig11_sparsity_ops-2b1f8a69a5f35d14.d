/root/repo/target/debug/deps/fig11_sparsity_ops-2b1f8a69a5f35d14.d: crates/bench/src/bin/fig11_sparsity_ops.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_sparsity_ops-2b1f8a69a5f35d14.rmeta: crates/bench/src/bin/fig11_sparsity_ops.rs Cargo.toml

crates/bench/src/bin/fig11_sparsity_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
