/root/repo/target/debug/deps/fig14_asic_latency-3c8b088d780df74a.d: crates/bench/src/bin/fig14_asic_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_asic_latency-3c8b088d780df74a.rmeta: crates/bench/src/bin/fig14_asic_latency.rs Cargo.toml

crates/bench/src/bin/fig14_asic_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
