/root/repo/target/debug/deps/alloc_free-d358a7eacbfbd009.d: tests/alloc_free.rs Cargo.toml

/root/repo/target/debug/deps/liballoc_free-d358a7eacbfbd009.rmeta: tests/alloc_free.rs Cargo.toml

tests/alloc_free.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
