/root/repo/target/debug/deps/table1_platforms-221df0b2b2d1d40c.d: crates/bench/src/bin/table1_platforms.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_platforms-221df0b2b2d1d40c.rmeta: crates/bench/src/bin/table1_platforms.rs Cargo.toml

crates/bench/src/bin/table1_platforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
