/root/repo/target/debug/deps/robo_bench-54521691bbba3f56.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/robo_bench-54521691bbba3f56: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
