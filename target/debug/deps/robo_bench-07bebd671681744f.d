/root/repo/target/debug/deps/robo_bench-07bebd671681744f.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/robo_bench-07bebd671681744f: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
