/root/repo/target/debug/deps/sec8_workload-9c967d7112ddbae3.d: crates/bench/src/bin/sec8_workload.rs Cargo.toml

/root/repo/target/debug/deps/libsec8_workload-9c967d7112ddbae3.rmeta: crates/bench/src/bin/sec8_workload.rs Cargo.toml

crates/bench/src/bin/sec8_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
