/root/repo/target/debug/deps/fig12_precision-d912b9aea09b85d2.d: crates/bench/src/bin/fig12_precision.rs

/root/repo/target/debug/deps/fig12_precision-d912b9aea09b85d2: crates/bench/src/bin/fig12_precision.rs

crates/bench/src/bin/fig12_precision.rs:
