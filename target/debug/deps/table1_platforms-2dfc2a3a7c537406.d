/root/repo/target/debug/deps/table1_platforms-2dfc2a3a7c537406.d: crates/bench/src/bin/table1_platforms.rs

/root/repo/target/debug/deps/table1_platforms-2dfc2a3a7c537406: crates/bench/src/bin/table1_platforms.rs

crates/bench/src/bin/table1_platforms.rs:
