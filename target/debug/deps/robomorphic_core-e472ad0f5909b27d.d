/root/repo/target/debug/deps/robomorphic_core-e472ad0f5909b27d.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

/root/repo/target/debug/deps/robomorphic_core-e472ad0f5909b27d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/kinematics.rs:
crates/core/src/platform.rs:
crates/core/src/template.rs:
crates/core/src/units.rs:
