/root/repo/target/debug/deps/table1_platforms-42c6620097928aed.d: crates/bench/src/bin/table1_platforms.rs

/root/repo/target/debug/deps/table1_platforms-42c6620097928aed: crates/bench/src/bin/table1_platforms.rs

crates/bench/src/bin/table1_platforms.rs:
