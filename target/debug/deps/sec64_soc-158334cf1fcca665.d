/root/repo/target/debug/deps/sec64_soc-158334cf1fcca665.d: crates/bench/src/bin/sec64_soc.rs Cargo.toml

/root/repo/target/debug/deps/libsec64_soc-158334cf1fcca665.rmeta: crates/bench/src/bin/sec64_soc.rs Cargo.toml

crates/bench/src/bin/sec64_soc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
