/root/repo/target/debug/deps/fig04_control_rates-b24465d79de7f75d.d: crates/bench/src/bin/fig04_control_rates.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_control_rates-b24465d79de7f75d.rmeta: crates/bench/src/bin/fig04_control_rates.rs Cargo.toml

crates/bench/src/bin/fig04_control_rates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
