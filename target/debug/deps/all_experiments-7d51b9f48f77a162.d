/root/repo/target/debug/deps/all_experiments-7d51b9f48f77a162.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-7d51b9f48f77a162: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
