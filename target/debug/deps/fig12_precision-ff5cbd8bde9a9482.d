/root/repo/target/debug/deps/fig12_precision-ff5cbd8bde9a9482.d: crates/bench/src/bin/fig12_precision.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_precision-ff5cbd8bde9a9482.rmeta: crates/bench/src/bin/fig12_precision.rs Cargo.toml

crates/bench/src/bin/fig12_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
