/root/repo/target/debug/deps/table1_platforms-5edee53c1104fa4f.d: crates/bench/src/bin/table1_platforms.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_platforms-5edee53c1104fa4f.rmeta: crates/bench/src/bin/table1_platforms.rs Cargo.toml

crates/bench/src/bin/table1_platforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
