/root/repo/target/debug/deps/sec64_soc-d9d0e5454017b4b5.d: crates/bench/src/bin/sec64_soc.rs Cargo.toml

/root/repo/target/debug/deps/libsec64_soc-d9d0e5454017b4b5.rmeta: crates/bench/src/bin/sec64_soc.rs Cargo.toml

crates/bench/src/bin/sec64_soc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
