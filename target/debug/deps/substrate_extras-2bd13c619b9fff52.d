/root/repo/target/debug/deps/substrate_extras-2bd13c619b9fff52.d: crates/bench/benches/substrate_extras.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_extras-2bd13c619b9fff52.rmeta: crates/bench/benches/substrate_extras.rs Cargo.toml

crates/bench/benches/substrate_extras.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
