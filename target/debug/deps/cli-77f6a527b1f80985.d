/root/repo/target/debug/deps/cli-77f6a527b1f80985.d: tests/cli.rs

/root/repo/target/debug/deps/cli-77f6a527b1f80985: tests/cli.rs

tests/cli.rs:
