/root/repo/target/debug/deps/fig12_precision-5bb00ffa956f9359.d: crates/bench/src/bin/fig12_precision.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_precision-5bb00ffa956f9359.rmeta: crates/bench/src/bin/fig12_precision.rs Cargo.toml

crates/bench/src/bin/fig12_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
