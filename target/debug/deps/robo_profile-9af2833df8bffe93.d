/root/repo/target/debug/deps/robo_profile-9af2833df8bffe93.d: crates/profile/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librobo_profile-9af2833df8bffe93.rmeta: crates/profile/src/lib.rs Cargo.toml

crates/profile/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
