/root/repo/target/debug/deps/floating_base-b25e1ed1e635eab1.d: tests/floating_base.rs Cargo.toml

/root/repo/target/debug/deps/libfloating_base-b25e1ed1e635eab1.rmeta: tests/floating_base.rs Cargo.toml

tests/floating_base.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
