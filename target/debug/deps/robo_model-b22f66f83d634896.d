/root/repo/target/debug/deps/robo_model-b22f66f83d634896.d: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs Cargo.toml

/root/repo/target/debug/deps/librobo_model-b22f66f83d634896.rmeta: crates/model/src/lib.rs crates/model/src/joint.rs crates/model/src/parse.rs crates/model/src/robot.rs crates/model/src/robots.rs crates/model/src/urdf.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/joint.rs:
crates/model/src/parse.rs:
crates/model/src/robot.rs:
crates/model/src/robots.rs:
crates/model/src/urdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
