/root/repo/target/debug/deps/sweep_links-f9a194c42a4bcc68.d: crates/bench/src/bin/sweep_links.rs

/root/repo/target/debug/deps/sweep_links-f9a194c42a4bcc68: crates/bench/src/bin/sweep_links.rs

crates/bench/src/bin/sweep_links.rs:
