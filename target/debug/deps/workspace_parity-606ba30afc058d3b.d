/root/repo/target/debug/deps/workspace_parity-606ba30afc058d3b.d: tests/workspace_parity.rs

/root/repo/target/debug/deps/workspace_parity-606ba30afc058d3b: tests/workspace_parity.rs

tests/workspace_parity.rs:
