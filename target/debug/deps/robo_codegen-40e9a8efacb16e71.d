/root/repo/target/debug/deps/robo_codegen-40e9a8efacb16e71.d: crates/codegen/src/lib.rs crates/codegen/src/compiled.rs crates/codegen/src/netlist.rs crates/codegen/src/opt.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

/root/repo/target/debug/deps/librobo_codegen-40e9a8efacb16e71.rlib: crates/codegen/src/lib.rs crates/codegen/src/compiled.rs crates/codegen/src/netlist.rs crates/codegen/src/opt.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

/root/repo/target/debug/deps/librobo_codegen-40e9a8efacb16e71.rmeta: crates/codegen/src/lib.rs crates/codegen/src/compiled.rs crates/codegen/src/netlist.rs crates/codegen/src/opt.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

crates/codegen/src/lib.rs:
crates/codegen/src/compiled.rs:
crates/codegen/src/netlist.rs:
crates/codegen/src/opt.rs:
crates/codegen/src/top.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/xunit_gen.rs:
