/root/repo/target/debug/deps/fig10_kernel_latency-6ccc4c7900a3e51b.d: crates/bench/benches/fig10_kernel_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_kernel_latency-6ccc4c7900a3e51b.rmeta: crates/bench/benches/fig10_kernel_latency.rs Cargo.toml

crates/bench/benches/fig10_kernel_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
