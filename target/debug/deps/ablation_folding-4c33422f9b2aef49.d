/root/repo/target/debug/deps/ablation_folding-4c33422f9b2aef49.d: crates/bench/src/bin/ablation_folding.rs

/root/repo/target/debug/deps/ablation_folding-4c33422f9b2aef49: crates/bench/src/bin/ablation_folding.rs

crates/bench/src/bin/ablation_folding.rs:
