/root/repo/target/debug/deps/floating_base-fc914e0e8ae20289.d: tests/floating_base.rs

/root/repo/target/debug/deps/floating_base-fc914e0e8ae20289: tests/floating_base.rs

tests/floating_base.rs:
