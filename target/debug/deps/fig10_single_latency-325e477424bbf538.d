/root/repo/target/debug/deps/fig10_single_latency-325e477424bbf538.d: crates/bench/src/bin/fig10_single_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_single_latency-325e477424bbf538.rmeta: crates/bench/src/bin/fig10_single_latency.rs Cargo.toml

crates/bench/src/bin/fig10_single_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
