/root/repo/target/debug/deps/fig10_kernel_latency-670a46bc349f9cd2.d: crates/bench/benches/fig10_kernel_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_kernel_latency-670a46bc349f9cd2.rmeta: crates/bench/benches/fig10_kernel_latency.rs Cargo.toml

crates/bench/benches/fig10_kernel_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
