/root/repo/target/debug/deps/robomorphic-301e8fc821a4dc6f.d: src/bin/robomorphic.rs Cargo.toml

/root/repo/target/debug/deps/librobomorphic-301e8fc821a4dc6f.rmeta: src/bin/robomorphic.rs Cargo.toml

src/bin/robomorphic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
