/root/repo/target/debug/deps/robomorphic-72d7a52b6f643a7d.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/robomorphic-72d7a52b6f643a7d: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
