/root/repo/target/debug/deps/alloc_free-bfbb0fe4649234d7.d: tests/alloc_free.rs

/root/repo/target/debug/deps/alloc_free-bfbb0fe4649234d7: tests/alloc_free.rs

tests/alloc_free.rs:
