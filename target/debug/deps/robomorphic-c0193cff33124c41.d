/root/repo/target/debug/deps/robomorphic-c0193cff33124c41.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/librobomorphic-c0193cff33124c41.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
