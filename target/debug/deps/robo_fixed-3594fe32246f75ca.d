/root/repo/target/debug/deps/robo_fixed-3594fe32246f75ca.d: crates/fixed/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librobo_fixed-3594fe32246f75ca.rmeta: crates/fixed/src/lib.rs Cargo.toml

crates/fixed/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
