/root/repo/target/debug/deps/properties-1ab2a0fd10bb764e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1ab2a0fd10bb764e: tests/properties.rs

tests/properties.rs:
