/root/repo/target/debug/deps/robomorphic-2a09d285536aaf44.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/robomorphic-2a09d285536aaf44: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
