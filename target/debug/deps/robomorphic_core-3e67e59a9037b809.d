/root/repo/target/debug/deps/robomorphic_core-3e67e59a9037b809.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs Cargo.toml

/root/repo/target/debug/deps/librobomorphic_core-3e67e59a9037b809.rmeta: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/kinematics.rs crates/core/src/platform.rs crates/core/src/template.rs crates/core/src/units.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/kinematics.rs:
crates/core/src/platform.rs:
crates/core/src/template.rs:
crates/core/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
