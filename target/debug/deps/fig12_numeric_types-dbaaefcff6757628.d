/root/repo/target/debug/deps/fig12_numeric_types-dbaaefcff6757628.d: crates/bench/benches/fig12_numeric_types.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_numeric_types-dbaaefcff6757628.rmeta: crates/bench/benches/fig12_numeric_types.rs Cargo.toml

crates/bench/benches/fig12_numeric_types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
