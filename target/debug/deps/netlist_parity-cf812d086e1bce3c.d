/root/repo/target/debug/deps/netlist_parity-cf812d086e1bce3c.d: tests/netlist_parity.rs Cargo.toml

/root/repo/target/debug/deps/libnetlist_parity-cf812d086e1bce3c.rmeta: tests/netlist_parity.rs Cargo.toml

tests/netlist_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
