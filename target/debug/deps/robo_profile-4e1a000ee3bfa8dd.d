/root/repo/target/debug/deps/robo_profile-4e1a000ee3bfa8dd.d: crates/profile/src/lib.rs

/root/repo/target/debug/deps/librobo_profile-4e1a000ee3bfa8dd.rlib: crates/profile/src/lib.rs

/root/repo/target/debug/deps/librobo_profile-4e1a000ee3bfa8dd.rmeta: crates/profile/src/lib.rs

crates/profile/src/lib.rs:
