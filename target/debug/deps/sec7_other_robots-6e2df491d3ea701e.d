/root/repo/target/debug/deps/sec7_other_robots-6e2df491d3ea701e.d: crates/bench/src/bin/sec7_other_robots.rs Cargo.toml

/root/repo/target/debug/deps/libsec7_other_robots-6e2df491d3ea701e.rmeta: crates/bench/src/bin/sec7_other_robots.rs Cargo.toml

crates/bench/src/bin/sec7_other_robots.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
