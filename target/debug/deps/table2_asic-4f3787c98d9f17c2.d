/root/repo/target/debug/deps/table2_asic-4f3787c98d9f17c2.d: crates/bench/src/bin/table2_asic.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_asic-4f3787c98d9f17c2.rmeta: crates/bench/src/bin/table2_asic.rs Cargo.toml

crates/bench/src/bin/table2_asic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
