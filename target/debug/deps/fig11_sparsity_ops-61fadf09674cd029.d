/root/repo/target/debug/deps/fig11_sparsity_ops-61fadf09674cd029.d: crates/bench/src/bin/fig11_sparsity_ops.rs

/root/repo/target/debug/deps/fig11_sparsity_ops-61fadf09674cd029: crates/bench/src/bin/fig11_sparsity_ops.rs

crates/bench/src/bin/fig11_sparsity_ops.rs:
