/root/repo/target/debug/deps/fig04_control_rates-edbc7e6078fbe08d.d: crates/bench/src/bin/fig04_control_rates.rs

/root/repo/target/debug/deps/fig04_control_rates-edbc7e6078fbe08d: crates/bench/src/bin/fig04_control_rates.rs

crates/bench/src/bin/fig04_control_rates.rs:
