/root/repo/target/debug/deps/fig13_roundtrip-ddf76a020d0825ad.d: crates/bench/src/bin/fig13_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_roundtrip-ddf76a020d0825ad.rmeta: crates/bench/src/bin/fig13_roundtrip.rs Cargo.toml

crates/bench/src/bin/fig13_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
