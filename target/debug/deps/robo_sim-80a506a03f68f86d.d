/root/repo/target/debug/deps/robo_sim-80a506a03f68f86d.d: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/debug/deps/robo_sim-80a506a03f68f86d: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

crates/sim/src/lib.rs:
crates/sim/src/accel_sim.rs:
crates/sim/src/coproc.rs:
crates/sim/src/stepper.rs:
crates/sim/src/xunit.rs:
