/root/repo/target/debug/deps/sweep_links-3fa9d6c4e3b86ac2.d: crates/bench/src/bin/sweep_links.rs

/root/repo/target/debug/deps/sweep_links-3fa9d6c4e3b86ac2: crates/bench/src/bin/sweep_links.rs

crates/bench/src/bin/sweep_links.rs:
