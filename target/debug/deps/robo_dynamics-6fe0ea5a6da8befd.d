/root/repo/target/debug/deps/robo_dynamics-6fe0ea5a6da8befd.d: crates/dynamics/src/lib.rs crates/dynamics/src/crba.rs crates/dynamics/src/deriv.rs crates/dynamics/src/fd.rs crates/dynamics/src/findiff.rs crates/dynamics/src/fk.rs crates/dynamics/src/model.rs crates/dynamics/src/rnea.rs crates/dynamics/src/batch.rs

/root/repo/target/debug/deps/robo_dynamics-6fe0ea5a6da8befd: crates/dynamics/src/lib.rs crates/dynamics/src/crba.rs crates/dynamics/src/deriv.rs crates/dynamics/src/fd.rs crates/dynamics/src/findiff.rs crates/dynamics/src/fk.rs crates/dynamics/src/model.rs crates/dynamics/src/rnea.rs crates/dynamics/src/batch.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/crba.rs:
crates/dynamics/src/deriv.rs:
crates/dynamics/src/fd.rs:
crates/dynamics/src/findiff.rs:
crates/dynamics/src/fk.rs:
crates/dynamics/src/model.rs:
crates/dynamics/src/rnea.rs:
crates/dynamics/src/batch.rs:
