/root/repo/target/debug/deps/coprocessor-2c97c7c29b4b568b.d: tests/coprocessor.rs Cargo.toml

/root/repo/target/debug/deps/libcoprocessor-2c97c7c29b4b568b.rmeta: tests/coprocessor.rs Cargo.toml

tests/coprocessor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
