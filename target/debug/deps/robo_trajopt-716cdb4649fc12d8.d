/root/repo/target/debug/deps/robo_trajopt-716cdb4649fc12d8.d: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

/root/repo/target/debug/deps/robo_trajopt-716cdb4649fc12d8: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

crates/trajopt/src/lib.rs:
crates/trajopt/src/ilqr.rs:
crates/trajopt/src/mpc.rs:
crates/trajopt/src/rate.rs:
