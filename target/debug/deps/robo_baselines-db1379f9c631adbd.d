/root/repo/target/debug/deps/robo_baselines-db1379f9c631adbd.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

/root/repo/target/debug/deps/librobo_baselines-db1379f9c631adbd.rlib: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

/root/repo/target/debug/deps/librobo_baselines-db1379f9c631adbd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/pool.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/pool.rs:
