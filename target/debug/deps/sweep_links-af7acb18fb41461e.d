/root/repo/target/debug/deps/sweep_links-af7acb18fb41461e.d: crates/bench/src/bin/sweep_links.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_links-af7acb18fb41461e.rmeta: crates/bench/src/bin/sweep_links.rs Cargo.toml

crates/bench/src/bin/sweep_links.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
