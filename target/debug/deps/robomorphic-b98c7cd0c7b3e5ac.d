/root/repo/target/debug/deps/robomorphic-b98c7cd0c7b3e5ac.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/librobomorphic-b98c7cd0c7b3e5ac.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
