/root/repo/target/debug/deps/sec8_workload-69b32116c6359228.d: crates/bench/src/bin/sec8_workload.rs

/root/repo/target/debug/deps/sec8_workload-69b32116c6359228: crates/bench/src/bin/sec8_workload.rs

crates/bench/src/bin/sec8_workload.rs:
