/root/repo/target/debug/deps/robo_collision-585d2873eccd9989.d: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs Cargo.toml

/root/repo/target/debug/deps/librobo_collision-585d2873eccd9989.rmeta: crates/collision/src/lib.rs crates/collision/src/checker.rs crates/collision/src/geometry.rs crates/collision/src/template.rs Cargo.toml

crates/collision/src/lib.rs:
crates/collision/src/checker.rs:
crates/collision/src/geometry.rs:
crates/collision/src/template.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
