/root/repo/target/debug/deps/fig14_asic_latency-84226d8763fcb5a1.d: crates/bench/src/bin/fig14_asic_latency.rs

/root/repo/target/debug/deps/fig14_asic_latency-84226d8763fcb5a1: crates/bench/src/bin/fig14_asic_latency.rs

crates/bench/src/bin/fig14_asic_latency.rs:
