/root/repo/target/debug/deps/robo_spatial-5efd95a1742a00ce.d: crates/spatial/src/lib.rs crates/spatial/src/inertia.rs crates/spatial/src/mat3.rs crates/spatial/src/mat6.rs crates/spatial/src/matn.rs crates/spatial/src/motion.rs crates/spatial/src/scalar.rs crates/spatial/src/transform.rs crates/spatial/src/vec3.rs Cargo.toml

/root/repo/target/debug/deps/librobo_spatial-5efd95a1742a00ce.rmeta: crates/spatial/src/lib.rs crates/spatial/src/inertia.rs crates/spatial/src/mat3.rs crates/spatial/src/mat6.rs crates/spatial/src/matn.rs crates/spatial/src/motion.rs crates/spatial/src/scalar.rs crates/spatial/src/transform.rs crates/spatial/src/vec3.rs Cargo.toml

crates/spatial/src/lib.rs:
crates/spatial/src/inertia.rs:
crates/spatial/src/mat3.rs:
crates/spatial/src/mat6.rs:
crates/spatial/src/matn.rs:
crates/spatial/src/motion.rs:
crates/spatial/src/scalar.rs:
crates/spatial/src/transform.rs:
crates/spatial/src/vec3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
