/root/repo/target/debug/deps/sec8_workload-aed35ab2376d8078.d: crates/bench/src/bin/sec8_workload.rs

/root/repo/target/debug/deps/sec8_workload-aed35ab2376d8078: crates/bench/src/bin/sec8_workload.rs

crates/bench/src/bin/sec8_workload.rs:
