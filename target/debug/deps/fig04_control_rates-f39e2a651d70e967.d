/root/repo/target/debug/deps/fig04_control_rates-f39e2a651d70e967.d: crates/bench/src/bin/fig04_control_rates.rs

/root/repo/target/debug/deps/fig04_control_rates-f39e2a651d70e967: crates/bench/src/bin/fig04_control_rates.rs

crates/bench/src/bin/fig04_control_rates.rs:
