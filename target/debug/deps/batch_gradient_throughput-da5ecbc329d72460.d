/root/repo/target/debug/deps/batch_gradient_throughput-da5ecbc329d72460.d: crates/bench/benches/batch_gradient_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_gradient_throughput-da5ecbc329d72460.rmeta: crates/bench/benches/batch_gradient_throughput.rs Cargo.toml

crates/bench/benches/batch_gradient_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
