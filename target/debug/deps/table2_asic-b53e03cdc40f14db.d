/root/repo/target/debug/deps/table2_asic-b53e03cdc40f14db.d: crates/bench/src/bin/table2_asic.rs

/root/repo/target/debug/deps/table2_asic-b53e03cdc40f14db: crates/bench/src/bin/table2_asic.rs

crates/bench/src/bin/table2_asic.rs:
