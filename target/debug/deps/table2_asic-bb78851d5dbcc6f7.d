/root/repo/target/debug/deps/table2_asic-bb78851d5dbcc6f7.d: crates/bench/src/bin/table2_asic.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_asic-bb78851d5dbcc6f7.rmeta: crates/bench/src/bin/table2_asic.rs Cargo.toml

crates/bench/src/bin/table2_asic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
