/root/repo/target/debug/deps/properties-f95b2112aeebf37b.d: tests/properties.rs

/root/repo/target/debug/deps/properties-f95b2112aeebf37b: tests/properties.rs

tests/properties.rs:
