/root/repo/target/debug/deps/ablation_folding-deda4c81f543a864.d: crates/bench/src/bin/ablation_folding.rs Cargo.toml

/root/repo/target/debug/deps/libablation_folding-deda4c81f543a864.rmeta: crates/bench/src/bin/ablation_folding.rs Cargo.toml

crates/bench/src/bin/ablation_folding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
