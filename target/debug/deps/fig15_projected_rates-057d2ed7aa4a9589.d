/root/repo/target/debug/deps/fig15_projected_rates-057d2ed7aa4a9589.d: crates/bench/src/bin/fig15_projected_rates.rs

/root/repo/target/debug/deps/fig15_projected_rates-057d2ed7aa4a9589: crates/bench/src/bin/fig15_projected_rates.rs

crates/bench/src/bin/fig15_projected_rates.rs:
