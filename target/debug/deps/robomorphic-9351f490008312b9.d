/root/repo/target/debug/deps/robomorphic-9351f490008312b9.d: src/bin/robomorphic.rs Cargo.toml

/root/repo/target/debug/deps/librobomorphic-9351f490008312b9.rmeta: src/bin/robomorphic.rs Cargo.toml

src/bin/robomorphic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
