/root/repo/target/debug/deps/robo_sim-6cb39b1352a4d8d9.d: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/debug/deps/robo_sim-6cb39b1352a4d8d9: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

crates/sim/src/lib.rs:
crates/sim/src/accel_sim.rs:
crates/sim/src/coproc.rs:
crates/sim/src/stepper.rs:
crates/sim/src/xunit.rs:
