/root/repo/target/debug/deps/robo_codegen-5886de5036e57b18.d: crates/codegen/src/lib.rs crates/codegen/src/netlist.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

/root/repo/target/debug/deps/librobo_codegen-5886de5036e57b18.rlib: crates/codegen/src/lib.rs crates/codegen/src/netlist.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

/root/repo/target/debug/deps/librobo_codegen-5886de5036e57b18.rmeta: crates/codegen/src/lib.rs crates/codegen/src/netlist.rs crates/codegen/src/top.rs crates/codegen/src/verilog.rs crates/codegen/src/xunit_gen.rs

crates/codegen/src/lib.rs:
crates/codegen/src/netlist.rs:
crates/codegen/src/top.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/xunit_gen.rs:
