/root/repo/target/debug/deps/robo_fixed-430605f2c396b125.d: crates/fixed/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librobo_fixed-430605f2c396b125.rmeta: crates/fixed/src/lib.rs Cargo.toml

crates/fixed/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
