/root/repo/target/debug/deps/fig14_asic_latency-7152b37d478d1e8c.d: crates/bench/src/bin/fig14_asic_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_asic_latency-7152b37d478d1e8c.rmeta: crates/bench/src/bin/fig14_asic_latency.rs Cargo.toml

crates/bench/src/bin/fig14_asic_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
