/root/repo/target/debug/deps/fig13_batch_roundtrip-98b174771b709da5.d: crates/bench/benches/fig13_batch_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_batch_roundtrip-98b174771b709da5.rmeta: crates/bench/benches/fig13_batch_roundtrip.rs Cargo.toml

crates/bench/benches/fig13_batch_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
