/root/repo/target/debug/deps/fig11_sparsity_ops-78ccc199c9e13174.d: crates/bench/src/bin/fig11_sparsity_ops.rs

/root/repo/target/debug/deps/fig11_sparsity_ops-78ccc199c9e13174: crates/bench/src/bin/fig11_sparsity_ops.rs

crates/bench/src/bin/fig11_sparsity_ops.rs:
