/root/repo/target/debug/deps/robo_trajopt-601eabb79bb4500d.d: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

/root/repo/target/debug/deps/librobo_trajopt-601eabb79bb4500d.rlib: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

/root/repo/target/debug/deps/librobo_trajopt-601eabb79bb4500d.rmeta: crates/trajopt/src/lib.rs crates/trajopt/src/ilqr.rs crates/trajopt/src/mpc.rs crates/trajopt/src/rate.rs

crates/trajopt/src/lib.rs:
crates/trajopt/src/ilqr.rs:
crates/trajopt/src/mpc.rs:
crates/trajopt/src/rate.rs:
