/root/repo/target/debug/deps/sec7_other_kernels-f20c6c2871718daa.d: crates/bench/src/bin/sec7_other_kernels.rs

/root/repo/target/debug/deps/sec7_other_kernels-f20c6c2871718daa: crates/bench/src/bin/sec7_other_kernels.rs

crates/bench/src/bin/sec7_other_kernels.rs:
