/root/repo/target/debug/deps/fig10_single_latency-5bdd60976cc2dcab.d: crates/bench/src/bin/fig10_single_latency.rs

/root/repo/target/debug/deps/fig10_single_latency-5bdd60976cc2dcab: crates/bench/src/bin/fig10_single_latency.rs

crates/bench/src/bin/fig10_single_latency.rs:
