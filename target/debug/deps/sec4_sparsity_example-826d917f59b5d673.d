/root/repo/target/debug/deps/sec4_sparsity_example-826d917f59b5d673.d: crates/bench/src/bin/sec4_sparsity_example.rs Cargo.toml

/root/repo/target/debug/deps/libsec4_sparsity_example-826d917f59b5d673.rmeta: crates/bench/src/bin/sec4_sparsity_example.rs Cargo.toml

crates/bench/src/bin/sec4_sparsity_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
