/root/repo/target/debug/deps/robo_bench-b7ebfcff0f771204.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/librobo_bench-b7ebfcff0f771204.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/librobo_bench-b7ebfcff0f771204.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
