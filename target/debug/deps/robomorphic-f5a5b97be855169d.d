/root/repo/target/debug/deps/robomorphic-f5a5b97be855169d.d: src/bin/robomorphic.rs Cargo.toml

/root/repo/target/debug/deps/librobomorphic-f5a5b97be855169d.rmeta: src/bin/robomorphic.rs Cargo.toml

src/bin/robomorphic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
