/root/repo/target/debug/deps/robo_sim-6d289b03dab65a1f.d: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/debug/deps/librobo_sim-6d289b03dab65a1f.rlib: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

/root/repo/target/debug/deps/librobo_sim-6d289b03dab65a1f.rmeta: crates/sim/src/lib.rs crates/sim/src/accel_sim.rs crates/sim/src/coproc.rs crates/sim/src/stepper.rs crates/sim/src/xunit.rs

crates/sim/src/lib.rs:
crates/sim/src/accel_sim.rs:
crates/sim/src/coproc.rs:
crates/sim/src/stepper.rs:
crates/sim/src/xunit.rs:
