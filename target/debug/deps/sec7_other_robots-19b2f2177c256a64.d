/root/repo/target/debug/deps/sec7_other_robots-19b2f2177c256a64.d: crates/bench/src/bin/sec7_other_robots.rs

/root/repo/target/debug/deps/sec7_other_robots-19b2f2177c256a64: crates/bench/src/bin/sec7_other_robots.rs

crates/bench/src/bin/sec7_other_robots.rs:
