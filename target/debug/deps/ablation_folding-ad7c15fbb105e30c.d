/root/repo/target/debug/deps/ablation_folding-ad7c15fbb105e30c.d: crates/bench/src/bin/ablation_folding.rs Cargo.toml

/root/repo/target/debug/deps/libablation_folding-ad7c15fbb105e30c.rmeta: crates/bench/src/bin/ablation_folding.rs Cargo.toml

crates/bench/src/bin/ablation_folding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
