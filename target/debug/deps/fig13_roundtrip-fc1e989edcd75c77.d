/root/repo/target/debug/deps/fig13_roundtrip-fc1e989edcd75c77.d: crates/bench/src/bin/fig13_roundtrip.rs

/root/repo/target/debug/deps/fig13_roundtrip-fc1e989edcd75c77: crates/bench/src/bin/fig13_roundtrip.rs

crates/bench/src/bin/fig13_roundtrip.rs:
