/root/repo/target/debug/deps/robo_dynamics-77dfd268472e294e.d: crates/dynamics/src/lib.rs crates/dynamics/src/crba.rs crates/dynamics/src/deriv.rs crates/dynamics/src/fd.rs crates/dynamics/src/findiff.rs crates/dynamics/src/fk.rs crates/dynamics/src/model.rs crates/dynamics/src/rnea.rs crates/dynamics/src/batch.rs Cargo.toml

/root/repo/target/debug/deps/librobo_dynamics-77dfd268472e294e.rmeta: crates/dynamics/src/lib.rs crates/dynamics/src/crba.rs crates/dynamics/src/deriv.rs crates/dynamics/src/fd.rs crates/dynamics/src/findiff.rs crates/dynamics/src/fk.rs crates/dynamics/src/model.rs crates/dynamics/src/rnea.rs crates/dynamics/src/batch.rs Cargo.toml

crates/dynamics/src/lib.rs:
crates/dynamics/src/crba.rs:
crates/dynamics/src/deriv.rs:
crates/dynamics/src/fd.rs:
crates/dynamics/src/findiff.rs:
crates/dynamics/src/fk.rs:
crates/dynamics/src/model.rs:
crates/dynamics/src/rnea.rs:
crates/dynamics/src/batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
