/root/repo/target/debug/deps/sec7_other_kernels-4ff4077597d02bf8.d: crates/bench/src/bin/sec7_other_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libsec7_other_kernels-4ff4077597d02bf8.rmeta: crates/bench/src/bin/sec7_other_kernels.rs Cargo.toml

crates/bench/src/bin/sec7_other_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
