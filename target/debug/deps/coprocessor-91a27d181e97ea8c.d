/root/repo/target/debug/deps/coprocessor-91a27d181e97ea8c.d: tests/coprocessor.rs

/root/repo/target/debug/deps/coprocessor-91a27d181e97ea8c: tests/coprocessor.rs

tests/coprocessor.rs:
