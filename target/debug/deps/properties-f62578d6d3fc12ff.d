/root/repo/target/debug/deps/properties-f62578d6d3fc12ff.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f62578d6d3fc12ff.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
