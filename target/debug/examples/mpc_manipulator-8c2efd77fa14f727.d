/root/repo/target/debug/examples/mpc_manipulator-8c2efd77fa14f727.d: examples/mpc_manipulator.rs

/root/repo/target/debug/examples/mpc_manipulator-8c2efd77fa14f727: examples/mpc_manipulator.rs

examples/mpc_manipulator.rs:
