/root/repo/target/debug/examples/task_space_reach-4b1477a984c18166.d: examples/task_space_reach.rs Cargo.toml

/root/repo/target/debug/examples/libtask_space_reach-4b1477a984c18166.rmeta: examples/task_space_reach.rs Cargo.toml

examples/task_space_reach.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
