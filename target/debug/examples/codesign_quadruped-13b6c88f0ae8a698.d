/root/repo/target/debug/examples/codesign_quadruped-13b6c88f0ae8a698.d: examples/codesign_quadruped.rs Cargo.toml

/root/repo/target/debug/examples/libcodesign_quadruped-13b6c88f0ae8a698.rmeta: examples/codesign_quadruped.rs Cargo.toml

examples/codesign_quadruped.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
