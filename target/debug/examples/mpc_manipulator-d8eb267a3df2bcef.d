/root/repo/target/debug/examples/mpc_manipulator-d8eb267a3df2bcef.d: examples/mpc_manipulator.rs

/root/repo/target/debug/examples/mpc_manipulator-d8eb267a3df2bcef: examples/mpc_manipulator.rs

examples/mpc_manipulator.rs:
