/root/repo/target/debug/examples/hardware_in_the_loop-bf8df7bd931ffa7c.d: examples/hardware_in_the_loop.rs

/root/repo/target/debug/examples/hardware_in_the_loop-bf8df7bd931ffa7c: examples/hardware_in_the_loop.rs

examples/hardware_in_the_loop.rs:
