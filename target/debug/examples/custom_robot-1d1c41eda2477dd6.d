/root/repo/target/debug/examples/custom_robot-1d1c41eda2477dd6.d: examples/custom_robot.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_robot-1d1c41eda2477dd6.rmeta: examples/custom_robot.rs Cargo.toml

examples/custom_robot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
