/root/repo/target/debug/examples/custom_robot-e63301141958fc9f.d: examples/custom_robot.rs

/root/repo/target/debug/examples/custom_robot-e63301141958fc9f: examples/custom_robot.rs

examples/custom_robot.rs:
