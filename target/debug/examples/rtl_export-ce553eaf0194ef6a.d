/root/repo/target/debug/examples/rtl_export-ce553eaf0194ef6a.d: examples/rtl_export.rs

/root/repo/target/debug/examples/rtl_export-ce553eaf0194ef6a: examples/rtl_export.rs

examples/rtl_export.rs:
