/root/repo/target/debug/examples/codesign_quadruped-8a2ccb72277e233f.d: examples/codesign_quadruped.rs

/root/repo/target/debug/examples/codesign_quadruped-8a2ccb72277e233f: examples/codesign_quadruped.rs

examples/codesign_quadruped.rs:
