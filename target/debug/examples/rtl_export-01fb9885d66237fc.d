/root/repo/target/debug/examples/rtl_export-01fb9885d66237fc.d: examples/rtl_export.rs

/root/repo/target/debug/examples/rtl_export-01fb9885d66237fc: examples/rtl_export.rs

examples/rtl_export.rs:
