/root/repo/target/debug/examples/codesign_quadruped-560d2a8992b67a2e.d: examples/codesign_quadruped.rs Cargo.toml

/root/repo/target/debug/examples/libcodesign_quadruped-560d2a8992b67a2e.rmeta: examples/codesign_quadruped.rs Cargo.toml

examples/codesign_quadruped.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
