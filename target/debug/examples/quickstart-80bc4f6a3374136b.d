/root/repo/target/debug/examples/quickstart-80bc4f6a3374136b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-80bc4f6a3374136b: examples/quickstart.rs

examples/quickstart.rs:
