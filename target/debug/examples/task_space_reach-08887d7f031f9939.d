/root/repo/target/debug/examples/task_space_reach-08887d7f031f9939.d: examples/task_space_reach.rs

/root/repo/target/debug/examples/task_space_reach-08887d7f031f9939: examples/task_space_reach.rs

examples/task_space_reach.rs:
