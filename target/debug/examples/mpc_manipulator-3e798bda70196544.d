/root/repo/target/debug/examples/mpc_manipulator-3e798bda70196544.d: examples/mpc_manipulator.rs Cargo.toml

/root/repo/target/debug/examples/libmpc_manipulator-3e798bda70196544.rmeta: examples/mpc_manipulator.rs Cargo.toml

examples/mpc_manipulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
