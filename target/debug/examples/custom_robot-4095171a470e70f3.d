/root/repo/target/debug/examples/custom_robot-4095171a470e70f3.d: examples/custom_robot.rs

/root/repo/target/debug/examples/custom_robot-4095171a470e70f3: examples/custom_robot.rs

examples/custom_robot.rs:
