/root/repo/target/debug/examples/mpc_manipulator-fa7e782c296ceae5.d: examples/mpc_manipulator.rs Cargo.toml

/root/repo/target/debug/examples/libmpc_manipulator-fa7e782c296ceae5.rmeta: examples/mpc_manipulator.rs Cargo.toml

examples/mpc_manipulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
