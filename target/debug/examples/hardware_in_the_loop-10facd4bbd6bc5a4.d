/root/repo/target/debug/examples/hardware_in_the_loop-10facd4bbd6bc5a4.d: examples/hardware_in_the_loop.rs

/root/repo/target/debug/examples/hardware_in_the_loop-10facd4bbd6bc5a4: examples/hardware_in_the_loop.rs

examples/hardware_in_the_loop.rs:
