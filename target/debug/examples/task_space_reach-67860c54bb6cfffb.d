/root/repo/target/debug/examples/task_space_reach-67860c54bb6cfffb.d: examples/task_space_reach.rs Cargo.toml

/root/repo/target/debug/examples/libtask_space_reach-67860c54bb6cfffb.rmeta: examples/task_space_reach.rs Cargo.toml

examples/task_space_reach.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
