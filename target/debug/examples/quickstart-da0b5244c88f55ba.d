/root/repo/target/debug/examples/quickstart-da0b5244c88f55ba.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-da0b5244c88f55ba: examples/quickstart.rs

examples/quickstart.rs:
