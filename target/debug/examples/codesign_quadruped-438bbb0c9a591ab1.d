/root/repo/target/debug/examples/codesign_quadruped-438bbb0c9a591ab1.d: examples/codesign_quadruped.rs

/root/repo/target/debug/examples/codesign_quadruped-438bbb0c9a591ab1: examples/codesign_quadruped.rs

examples/codesign_quadruped.rs:
