/root/repo/target/debug/examples/custom_robot-1dd161c0a5077967.d: examples/custom_robot.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_robot-1dd161c0a5077967.rmeta: examples/custom_robot.rs Cargo.toml

examples/custom_robot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
