/root/repo/target/debug/examples/task_space_reach-0d1ad4a2c7b84c45.d: examples/task_space_reach.rs

/root/repo/target/debug/examples/task_space_reach-0d1ad4a2c7b84c45: examples/task_space_reach.rs

examples/task_space_reach.rs:
