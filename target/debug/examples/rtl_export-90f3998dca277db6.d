/root/repo/target/debug/examples/rtl_export-90f3998dca277db6.d: examples/rtl_export.rs Cargo.toml

/root/repo/target/debug/examples/librtl_export-90f3998dca277db6.rmeta: examples/rtl_export.rs Cargo.toml

examples/rtl_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
