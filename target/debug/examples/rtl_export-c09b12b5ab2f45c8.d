/root/repo/target/debug/examples/rtl_export-c09b12b5ab2f45c8.d: examples/rtl_export.rs Cargo.toml

/root/repo/target/debug/examples/librtl_export-c09b12b5ab2f45c8.rmeta: examples/rtl_export.rs Cargo.toml

examples/rtl_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
